// Shared helpers for the figure-reproduction benches. Each bench binary
// prints one row per (series, size) point in a fixed column format:
//
//   figure  series  n  elements  time_ms  shuffle_MB
//
// matching the series of the paper's Figure 4 plots (x = number of matrix
// elements, y = total time). SAC_BENCH_REPS (default 2) controls how many
// timed repetitions are averaged; SAC_BENCH_SCALE in {tiny,small,full}
// controls the size sweep so `ctest`-adjacent runs stay fast.
//
// Besides the stdout table, every bench writes a machine-readable
// BENCH_<name>.json (override path with --out <file>) carrying wall time
// plus the per-stage metrics snapshot (shuffle bytes/records per
// operator), so the perf trajectory is auditable across PRs. Pass
// `--trace <file>` to also dump a Chrome trace-event JSON of every
// timed run (open in chrome://tracing or https://ui.perfetto.dev), and
// `--profile <file>` to write the profiler's profile.json for the last
// captured query (summarize/diff it with tools/sac_prof; see
// docs/PROFILING.md).
#ifndef SAC_BENCH_BENCH_COMMON_H_
#define SAC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/api/sac.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace sac::bench {

inline int Reps() {
  const char* r = std::getenv("SAC_BENCH_REPS");
  return r ? std::max(1, atoi(r)) : 2;
}

inline std::string Scale() {
  const char* s = std::getenv("SAC_BENCH_SCALE");
  return s ? s : "small";
}

/// CPUs available to this process, stamped into every report so
/// sac_prof diff only hard-gates wall-clock against a baseline taken on
/// the same machine shape (counters are shape-independent and always
/// gate). Containerized runners resize CPU allocations between runs, and
/// a 4-executor simulated cluster on 1 CPU times nothing like on 8.
inline int HostCpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// The benchmark cluster shape: 4 simulated executors. (The paper used 8
/// executors of 11 cores; shuffle accounting scales the same way.)
inline runtime::ClusterConfig BenchCluster() {
  runtime::ClusterConfig c;
  c.num_executors = 4;
  c.cores_per_executor = 2;
  c.default_parallelism = 8;
  return c;
}

struct Row {
  std::string figure;
  std::string series;
  int64_t n = 0;
  int64_t elements = 0;
  double time_ms = 0;
  double shuffle_mb = 0;
  // Filled by TimeQuery: engine-wide totals and the per-stage breakdown
  // of the last timed repetition.
  MetricsSnapshot totals;
  std::vector<StageStatsSnapshot> stages;
  // Cost-model predictions for the same repetition: total shuffle bytes
  // per engine stage label, recorded at compile time (Sac::
  // predicted_shuffle_bytes). `sac_prof predcheck` holds these within 2x
  // of the measured per-label counters (docs/COST_MODEL.md).
  std::map<std::string, double> predicted;
};

inline void PrintHeader(const char* title) {
  std::printf("# %s\n", title);
  std::printf("%-8s %-12s %8s %12s %12s %12s\n", "figure", "series", "n",
              "elements", "time_ms", "shuffle_MB");
}

inline void PrintRow(const Row& r) {
  std::printf("%-8s %-12s %8lld %12lld %12.1f %12.2f\n", r.figure.c_str(),
              r.series.c_str(), static_cast<long long>(r.n),
              static_cast<long long>(r.elements), r.time_ms, r.shuffle_mb);
  std::fflush(stdout);
}

/// Times `fn` Reps() times (after a full stats reset), returning mean
/// wall milliseconds plus the last run's totals and per-stage snapshot.
template <typename Fn>
Row TimeQuery(sac::Sac* ctx, const std::string& figure,
              const std::string& series, int64_t n, int64_t elements,
              Fn&& fn) {
  double total_ms = 0;
  const int reps = Reps();
  Row row{};
  row.figure = figure;
  row.series = series;
  row.n = n;
  row.elements = elements;
  for (int rep = 0; rep < reps; ++rep) {
    // Keep the trace of the last rep only: earlier reps are warmup noise.
    ctx->ResetStats();
    Stopwatch sw;
    fn();
    total_ms += sw.ElapsedMillis();
  }
  row.time_ms = total_ms / reps;
  row.totals = ctx->metrics().Snapshot();
  row.stages = ctx->stages().Snapshot();
  // ResetStats cleared earlier reps' predictions, so this is exactly the
  // last repetition's compile-time estimate — same window as the stage
  // snapshot above.
  row.predicted = ctx->predicted_shuffle_bytes();
  row.shuffle_mb =
      static_cast<double>(row.totals.shuffle_bytes) / (1024.0 * 1024.0);
  return row;
}

/// Accumulates rows and trace spans, prints the stdout table rows, and on
/// destruction writes BENCH_<name>.json (plus the Chrome trace if
/// --trace was given).
class BenchReporter {
 public:
  BenchReporter(std::string name, int argc, char** argv)
      : name_(std::move(name)), out_path_("BENCH_" + name_ + ".json") {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* flag) -> const char* {
        const size_t len = std::strlen(flag);
        if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
            arg[len] == '=') {
          return argv[i] + len + 1;
        }
        if (arg == flag && i + 1 < argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = value("--trace")) {
        trace_path_ = v;
      } else if (const char* v = value("--profile")) {
        profile_path_ = v;
      } else if (const char* v = value("--out")) {
        out_path_ = v;
      }
    }
  }

  ~BenchReporter() { Write(); }

  bool tracing() const { return !trace_path_.empty(); }
  bool profiling() const { return !profile_path_.empty(); }

  /// Prints the stdout row and records it for the JSON report.
  void Report(const Row& row) {
    PrintRow(row);
    rows_.push_back(row);
  }

  /// Builds the profiler's profile.json from `ctx`'s current trace and
  /// stage stats, anchored to `row`'s measured wall time. Call BEFORE
  /// CaptureTrace (which drains the span buffers); the last capture
  /// wins. Cheap no-op when --profile was not given.
  void CaptureProfile(sac::Sac* ctx, const Row& row) {
    if (!profiling()) return;
    profile_json_ = ctx->ProfileJson(
        row.time_ms,
        row.figure + ":" + row.series + ":n=" + std::to_string(row.n));
  }

  /// Moves the spans traced so far out of `ctx` into the bench trace
  /// (call once per context, after its timed queries). Cheap no-op when
  /// --trace was not given.
  void CaptureTrace(sac::Sac* ctx) {
    if (!tracing()) return;
    std::vector<trace::SpanRecord> spans = ctx->tracer().Drain();
    spans_.insert(spans_.end(), std::make_move_iterator(spans.begin()),
                  std::make_move_iterator(spans.end()));
  }

  void Write() {
    if (written_) return;
    written_ = true;
    WriteJsonReport();
    if (tracing()) {
      std::ofstream out(trace_path_, std::ios::binary | std::ios::trunc);
      out << trace::Tracer::ToChromeJson(spans_);
      std::fprintf(stderr, "trace written to %s (%zu spans)\n",
                   trace_path_.c_str(), spans_.size());
    }
    if (profiling() && !profile_json_.empty()) {
      std::ofstream out(profile_path_, std::ios::binary | std::ios::trunc);
      out << profile_json_;
      std::fprintf(stderr, "profile written to %s\n", profile_path_.c_str());
    }
  }

 private:
  // Every MetricsSnapshot counter under its canonical field name, so
  // the report schema tracks the snapshot (and docs/OPERATIONS.md
  // glossary) automatically.
  static void AppendCounters(std::string* out, const MetricsSnapshot& c) {
    bool first = true;
    c.ForEachCounter([&](const char* name, uint64_t v) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      *out += name;
      *out += "\":";
      *out += std::to_string(v);
    });
  }

  void WriteJsonReport() const {
    std::string j = "{\n";
    j += "\"bench\":\"" + trace::JsonEscape(name_) + "\",";
    j += "\"scale\":\"" + trace::JsonEscape(Scale()) + "\",";
    j += "\"reps\":" + std::to_string(Reps()) + ",";
    j += "\"host_cpus\":" + std::to_string(HostCpus()) + ",\n";
    j += "\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      j += (i ? ",\n" : "\n");
      j += "{\"figure\":\"" + trace::JsonEscape(r.figure) + "\",";
      j += "\"series\":\"" + trace::JsonEscape(r.series) + "\",";
      j += "\"n\":" + std::to_string(r.n) + ",";
      j += "\"elements\":" + std::to_string(r.elements) + ",";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", r.time_ms);
      j += std::string("\"time_ms\":") + buf + ",";
      j += "\"totals\":{";
      AppendCounters(&j, r.totals);
      j += "},\"stages\":[";
      for (size_t s = 0; s < r.stages.size(); ++s) {
        const StageStatsSnapshot& st = r.stages[s];
        j += (s ? "," : "");
        j += "{\"id\":" + std::to_string(st.id) + ",\"label\":\"" +
             trace::JsonEscape(st.label) + "\",\"kind\":\"" +
             trace::JsonEscape(st.kind) + "\",";
        AppendCounters(&j, st.counters);
        std::snprintf(buf, sizeof(buf), "%.3f", st.wall_ms);
        j += std::string(",\"wall_ms\":") + buf;
        j += ",\"task_us\":{\"count\":" + std::to_string(st.task_us.count) +
             ",\"mean\":" + std::to_string(static_cast<uint64_t>(
                                st.task_us.Mean())) +
             ",\"p50\":" + std::to_string(st.task_us.Percentile(0.5)) +
             ",\"p95\":" + std::to_string(st.task_us.Percentile(0.95)) +
             ",\"max\":" + std::to_string(st.task_us.max) + "}}";
      }
      j += "],\"predicted\":{";
      bool first_pred = true;
      for (const auto& [label, bytes] : r.predicted) {
        if (!first_pred) j += ',';
        first_pred = false;
        std::snprintf(buf, sizeof(buf), "%.0f", bytes);
        j += "\"" + trace::JsonEscape(label) + "\":" + buf;
      }
      j += "}}";
    }
    j += "\n]}\n";
    std::ofstream out(out_path_, std::ios::binary | std::ios::trunc);
    out << j;
    std::fprintf(stderr, "report written to %s (%zu rows)\n",
                 out_path_.c_str(), rows_.size());
  }

  std::string name_;
  std::string out_path_;
  std::string trace_path_;
  std::string profile_path_;
  std::string profile_json_;
  std::vector<Row> rows_;
  std::vector<trace::SpanRecord> spans_;
  bool written_ = false;
};

#define SAC_BENCH_CHECK(expr)                                           \
  do {                                                                  \
    auto _st = (expr);                                                  \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "bench failure: %s\n",                       \
                   _st.status().ToString().c_str());                    \
      std::exit(1);                                                     \
    }                                                                   \
  } while (false)

}  // namespace sac::bench

#endif  // SAC_BENCH_BENCH_COMMON_H_
