// Ablation 5 -- kernel backends (docs/KERNELS.md): the same distributed
// plans run under each registered tile-kernel backend (generic / packed /
// jvmlike), plus fused vs unfused elementwise pipelines.
//
// Like bench_abl_strategy this binary is a GATE, not just a report:
//   1. single-tile GEMM: the packed microkernel must beat the generic
//      blocked loop by >= 1.3x at n=512 (the backend's reason to exist),
//      and the two products must match byte for byte;
//   2. backend identity: the fig4a-shaped add and fig4b-shaped multiply
//      must produce byte-identical results under all three backends --
//      switching backends changes time, never values;
//   3. fusion: the transpose-feeding-elementwise query with
//      fuse_elementwise on must match the unfused run byte for byte
//      while allocating strictly fewer tiles (the fused stage skips the
//      materialized transposed temporary).
// Any violation exits non-zero. scripts/bench.sh writes the full report;
// scripts/check.sh smoke-runs the gate at tiny scale.
#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "src/api/algorithms.h"
#include "src/common/rng.h"
#include "src/la/kernels.h"
#include "src/la/packed_gemm.h"

namespace {

using sac::la::Tile;

bool SameBits(const Tile& x, const Tile& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.size() == 0 ||
          std::memcmp(x.data(), y.data(),
                      sizeof(double) * static_cast<size_t>(x.size())) == 0);
}

/// Best-of-reps wall time: the min is the right statistic for a ratio
/// gate -- both sides see the same machine, the min strips scheduler
/// noise from each independently.
double BestMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  // The env var would force every context onto one backend and silently
  // turn the cross-backend series into three runs of the same thing --
  // refuse, like bench_abl_memory does for SAC_MEM_BUDGET.
  if (std::getenv("SAC_KERNEL_BACKEND") != nullptr) {
    std::fprintf(stderr,
                 "bench_abl_backend: unset SAC_KERNEL_BACKEND -- this bench "
                 "selects backends per context\n");
    return 1;
  }

  std::vector<int64_t> sizes;
  const int64_t block = 64;
  const std::string scale = Scale();
  if (scale == "tiny") {
    sizes = {128};
  } else if (scale == "full") {
    sizes = {256, 512};
  } else {
    sizes = {256};
  }

  PrintHeader(
      "Ablation 5: kernel backends -- generic vs packed vs jvmlike, "
      "fused vs unfused");
  BenchReporter reporter("abl_backend", argc, argv);

  int violations = 0;

  // ---- Gate 1: single-tile packed GEMM speedup at the gate shape. ----
  // Always n=512 regardless of scale: the bound is only meaningful once
  // the packed path actually packs and the panels leave L2.
  {
    const int64_t n = 512;
    const double kMinSpeedup = 1.3;
    Rng rng(901);
    Tile a(n, n), b(n, n);
    a.FillRandom(&rng, 0.0, 1.0);
    b.FillRandom(&rng, 0.0, 1.0);
    Tile cg(n, n), cp(n, n);
    la::GemmAccum(a, b, &cg);        // warm both paths once, untimed
    la::PackedGemmAccum(a, b, &cp);
    if (!SameBits(cg, cp)) {
      std::fprintf(stderr,
                   "GATE FAIL: packed GEMM differs from generic bitwise at "
                   "n=%lld\n",
                   static_cast<long long>(n));
      ++violations;
    }
    const int reps = std::max(3, Reps());
    const double gen_ms = BestMs(reps, [&] {
      Tile c(n, n);
      la::GemmAccum(a, b, &c);
    });
    const double pack_ms = BestMs(reps, [&] {
      Tile c(n, n);
      la::PackedGemmAccum(a, b, &c);
    });
    const double speedup = gen_ms / pack_ms;
    std::printf("gemm512: generic %.1f ms, packed %.1f ms, speedup %.2fx\n",
                gen_ms, pack_ms, speedup);
    if (speedup < kMinSpeedup) {
      std::fprintf(stderr,
                   "GATE FAIL: packed GEMM %.2fx over generic at n=512, "
                   "need >= %.2fx\n",
                   speedup, kMinSpeedup);
      ++violations;
    }
  }

  // ---- Gate 2: backend byte-identity on distributed plans. ----
  const char* kBackends[] = {"generic", "packed", "jvmlike"};
  for (int64_t n : sizes) {
    Tile mul_ref, add_ref;
    for (const char* backend : kBackends) {
      runtime::ClusterConfig cfg = BenchCluster();
      cfg.kernel_backend = backend;

      // fig4b-shaped multiply (GEMM through the backend).
      {
        Sac ctx(cfg);
        auto a = ctx.RandomMatrix(n, n, block, 901, 0.0, 10.0).value();
        auto b = ctx.RandomMatrix(n, n, block, 902, 0.0, 10.0).value();
        Result<storage::TiledMatrix> prod = storage::TiledMatrix{};
        const Row row = TimeQuery(
            &ctx, "abl_backend", std::string("mul-") + backend, n, n * n,
            [&] {
              prod = algo::Multiply(&ctx, a, b);
              SAC_BENCH_CHECK(prod);
            });
        reporter.Report(row);
        reporter.CaptureProfile(&ctx, row);
        const Tile local = ctx.ToLocal(prod.value()).value();
        if (std::strcmp(backend, "generic") == 0) {
          mul_ref = local;
        } else if (!SameBits(local, mul_ref)) {
          std::fprintf(stderr,
                       "GATE FAIL: n=%lld multiply under %s differs from "
                       "generic bitwise\n",
                       static_cast<long long>(n), backend);
          ++violations;
        }
      }

      // fig4a-shaped add (elementwise zip through the backend).
      {
        Sac ctx(cfg);
        ctx.Bind("A", ctx.RandomMatrix(n, n, block, 903, 0.0, 10.0).value());
        ctx.Bind("B", ctx.RandomMatrix(n, n, block, 904, 0.0, 10.0).value());
        ctx.BindScalar("n", n);
        Result<storage::TiledMatrix> sum = storage::TiledMatrix{};
        const Row row = TimeQuery(
            &ctx, "abl_backend", std::string("add-") + backend, n, n * n,
            [&] {
              sum = ctx.EvalTiled(
                  "tiled(n,n)[ ((i,j),a+b) | ((i,j),a) <- A, "
                  "((ii,jj),b) <- B, ii == i, jj == j ]");
              SAC_BENCH_CHECK(sum);
            });
        reporter.Report(row);
        const Tile local = ctx.ToLocal(sum.value()).value();
        if (std::strcmp(backend, "generic") == 0) {
          add_ref = local;
        } else if (!SameBits(local, add_ref)) {
          std::fprintf(stderr,
                       "GATE FAIL: n=%lld add under %s differs from generic "
                       "bitwise\n",
                       static_cast<long long>(n), backend);
          ++violations;
        }
      }
    }
  }

  // ---- Gate 3: fusion -- same bytes, strictly fewer tile allocations. --
  for (int64_t n : sizes) {
    Tile results[2];
    uint64_t allocs[2] = {0, 0};
    for (int fused = 0; fused < 2; ++fused) {
      planner::PlannerOptions opts;
      opts.fuse_elementwise = fused == 1;
      Sac ctx(BenchCluster(), opts);
      ctx.Bind("A", ctx.RandomMatrix(n, n, block, 905, 0.0, 10.0).value());
      ctx.BindScalar("n", n);
      ctx.BindScalar("c", 2.5);
      Result<storage::TiledMatrix> out = storage::TiledMatrix{};
      const Row row = TimeQuery(
          &ctx, "abl_backend", fused ? "fused" : "unfused", n, n * n, [&] {
            out = ctx.EvalTiled("tiled(n,n)[ ((j,i), c*a) | ((i,j),a) <- A ]");
            SAC_BENCH_CHECK(out);
          });
      reporter.Report(row);
      results[fused] = ctx.ToLocal(out.value()).value();
      allocs[fused] = ctx.metrics().Snapshot().tile_allocs;
    }
    if (!SameBits(results[0], results[1])) {
      std::fprintf(stderr,
                   "GATE FAIL: n=%lld fused transpose+scale differs from "
                   "unfused bitwise\n",
                   static_cast<long long>(n));
      ++violations;
    }
    if (allocs[1] >= allocs[0]) {
      std::fprintf(stderr,
                   "GATE FAIL: n=%lld fusion did not reduce tile allocations "
                   "(fused %llu vs unfused %llu)\n",
                   static_cast<long long>(n),
                   static_cast<unsigned long long>(allocs[1]),
                   static_cast<unsigned long long>(allocs[0]));
      ++violations;
    }
  }

  if (violations == 0) {
    std::printf(
        "gate: packed >= 1.3x generic GEMM at 512, all backends "
        "byte-identical, fusion reduces tile allocations\n");
  }
  return violations == 0 ? 0 : 1;
}
