// Figure 4.A -- Matrix addition: total time vs number of elements, for
// MLlib-like BlockMatrix.add (cogroup + pure-JVM-style kernels) and SAC's
// generated tiling-preserving plan (tile join + fused fast kernels).
//
// Paper shape to reproduce: SAC runs a bit faster than MLlib at every
// size, with both growing linearly in the number of elements.
#include "bench/bench_common.h"

#include "src/api/algorithms.h"
#include "src/baseline/block_matrix.h"

int main(int argc, char** argv) {
  using namespace sac;           // NOLINT
  using namespace sac::bench;    // NOLINT

  std::vector<int64_t> sizes;
  int64_t block = 256;
  const std::string scale = Scale();
  if (scale == "tiny") {
    sizes = {256, 512};
    block = 128;
  } else if (scale == "full") {
    sizes = {512, 1024, 2048, 3072, 4096};
  } else {
    sizes = {512, 1024, 1536, 2048};
  }

  PrintHeader(
      "Figure 4.A: matrix addition, MLlib baseline vs SAC (5.1 plan)");
  BenchReporter reporter("fig4a", argc, argv);
  Sac ctx(BenchCluster());
  for (int64_t n : sizes) {
    auto a = ctx.RandomMatrix(n, n, block, 101, 0.0, 10.0).value();
    auto b = ctx.RandomMatrix(n, n, block, 102, 0.0, 10.0).value();

    // MLlib baseline.
    auto ml_a = baseline::BlockMatrix::FromTiled(a);
    auto ml_b = baseline::BlockMatrix::FromTiled(b);
    {
      const Row row = TimeQuery(&ctx, "fig4a", "MLlib", n, n * n, [&] {
        SAC_BENCH_CHECK(ml_a.Add(&ctx.engine(), ml_b));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }

    // SAC generated plan. Profiled last per size so the emitted profile
    // artifact describes the SAC series.
    {
      const Row row = TimeQuery(&ctx, "fig4a", "SAC", n, n * n, [&] {
        SAC_BENCH_CHECK(algo::Add(&ctx, a, b));
      });
      reporter.Report(row);
      reporter.CaptureProfile(&ctx, row);
      reporter.CaptureTrace(&ctx);
    }
  }
  return 0;
}
