// Recovery ablation / chaos gate: the Figure 4.C factorization workload
// run three ways from identical seeds --
//
//   fault-free    no injected faults (the baseline)
//   chaos         a seeded FaultPlan injecting failures at every named
//                 point (pre-run, mid-map, shuffle-serialize,
//                 post-shuffle); retries must recover silently
//   chaos+ckpt    same plan, with P and Q checkpointed after every
//                 gradient step (lineage truncation exercised under
//                 faults)
//
// The gate FAILS (nonzero exit) unless: the chaos runs produce
// byte-identical P/Q factors to the fault-free run, at least 3 faults
// were injected with at least one mid-shuffle-serialization, retries and
// backoff show up in the metrics, and the chaos wall time stays within a
// loose multiple of the fault-free run (recovery must not devolve into
// recomputing the world). `--smoke` shrinks the iteration count for CI.
#include "bench/bench_common.h"

#include <cstring>

#include "src/api/algorithms.h"
#include "src/runtime/recovery.h"

namespace {

/// Byte-exact factor comparison: deterministic reduce order plus exact
/// binary serialization make replayed runs bit-identical, so any drift
/// is a recovery bug, not rounding.
bool SameTile(const sac::la::Tile& a, const sac::la::Tile& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.vec().data(), b.vec().data(),
                     a.vec().size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sac;         // NOLINT
  using namespace sac::bench;  // NOLINT
  using runtime::recovery::FaultPlan;
  using runtime::recovery::FaultPoint;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int64_t n = 128, block = 64, k = 64;
  const int iters = smoke ? 2 : 3;
  const double gamma = 0.002, lambda = 0.02;

  // One failure at each named point. Stage "*" matches every operator, so
  // each rule fires once per (stage, partition) on first attempts; every
  // failed attempt is retried with backoff and must leave no trace in the
  // results. Each rule targets a distinct partition: two rules on the
  // same partition would shadow each other (the earlier point kills
  // attempt 1, and by attempt 2 a count=1 rule no longer matches).
  const char* kChaosPlan =
      "seed=11;"
      "pre-run@*:part=0:count=1;"
      "mid-map@*:part=1:count=1;"
      "shuffle-serialize@*:part=2:count=1;"
      "post-shuffle@*:part=3:count=1";

  PrintHeader(
      "Recovery ablation: fig4c factorization under a seeded fault plan");
  BenchReporter reporter("abl_recovery", argc, argv);

  int violations = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "CHAOS GATE VIOLATION: %s\n", what);
      ++violations;
    }
  };

  struct RunResult {
    Row row;
    la::Tile p{0, 0};
    la::Tile q{0, 0};
    uint64_t injected = 0;
    uint64_t injected_shuffle = 0;
  };

  auto run = [&](const std::string& series, const char* plan,
                 bool checkpoint_each_step) -> RunResult {
    Sac ctx(BenchCluster());
    if (plan != nullptr) {
      auto parsed = FaultPlan::Parse(plan);
      SAC_BENCH_CHECK(parsed);
      ctx.engine().set_fault_plan(std::move(parsed).value());
    }
    auto r = ctx.RandomSparseMatrix(n, n, block, 301, 0.1, 5).value();
    auto p0 = ctx.RandomMatrix(n, k, block, 302, 0.0, 1.0).value();
    auto q0 = ctx.RandomMatrix(n, k, block, 303, 0.0, 1.0).value();
    RunResult out;
    algo::Factorization st{p0, q0};
    out.row =
        TimeQuery(&ctx, "abl_recovery", series, n, n * n, [&] {
          st = algo::Factorization{p0, q0};  // every rep replays from seed
          for (int it = 0; it < iters; ++it) {
            SAC_BENCH_CHECK(
                [&]() -> Result<bool> {
                  SAC_ASSIGN_OR_RETURN(
                      st, algo::FactorizationStep(&ctx, r, st, gamma,
                                                  lambda));
                  if (checkpoint_each_step) {
                    SAC_RETURN_NOT_OK(ctx.Checkpoint(st.p));
                    SAC_RETURN_NOT_OK(ctx.Checkpoint(st.q));
                  }
                  return true;
                }());
          }
        });
    reporter.Report(out.row);
    reporter.CaptureTrace(&ctx);
    out.p = ctx.ToLocal(st.p).value();
    out.q = ctx.ToLocal(st.q).value();
    out.injected = ctx.engine().fault_plan().injected();
    out.injected_shuffle =
        ctx.engine().fault_plan().injected(FaultPoint::kShuffleSerialize);
    return out;
  };

  const RunResult clean = run("fault-free", nullptr, false);
  const RunResult chaos = run("chaos", kChaosPlan, false);
  const RunResult ckpt = run("chaos+ckpt", kChaosPlan, true);

  expect(clean.injected == 0, "fault-free run injected faults");
  expect(chaos.injected >= 3, "chaos run injected fewer than 3 faults");
  expect(chaos.injected_shuffle >= 1,
         "no fault fired during shuffle serialization");
  expect(SameTile(chaos.p, clean.p) && SameTile(chaos.q, clean.q),
         "chaos factors are not byte-identical to the fault-free run");
  expect(SameTile(ckpt.p, clean.p) && SameTile(ckpt.q, clean.q),
         "chaos+ckpt factors are not byte-identical to the fault-free run");
  expect(chaos.row.totals.tasks_retried > 0,
         "chaos run shows no retries in metrics");
  expect(chaos.row.totals.retry_wait_us > 0,
         "chaos run shows no backoff time in metrics");
  expect(ckpt.row.totals.checkpoint_bytes > 0,
         "chaos+ckpt run metered no checkpoint bytes");
  // Loose overhead bound: retries redo single tasks, not whole stages, so
  // recovery cost must stay within a small multiple of the clean run.
  expect(chaos.row.time_ms <= clean.row.time_ms * 5.0 + 500.0,
         "chaos overhead exceeds 5x fault-free + 500ms");

  if (violations > 0) {
    std::fprintf(stderr, "chaos gate: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("chaos gate: ok (%llu faults injected, %llu mid-shuffle)\n",
              static_cast<unsigned long long>(chaos.injected),
              static_cast<unsigned long long>(chaos.injected_shuffle));
  return 0;
}
