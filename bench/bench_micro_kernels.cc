// Micro-benchmarks (google-benchmark) for the primitive layers: dense
// kernels vs jvmlike kernels, Value serialization, and one engine shuffle.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/la/jvmlike.h"
#include "src/la/kernels.h"
#include "src/la/packed_gemm.h"
#include "src/runtime/engine.h"

namespace {

using sac::Rng;
using sac::la::Tile;

Tile RandomTile(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Tile t(n, n);
  t.FillRandom(&rng, 0.0, 1.0);
  return t;
}

void BM_GemmFast(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tile a = RandomTile(n, 1), b = RandomTile(n, 2), c(n, n);
  for (auto _ : state) {
    sac::la::GemmAccum(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmFast)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmPacked(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tile a = RandomTile(n, 1), b = RandomTile(n, 2), c(n, n);
  for (auto _ : state) {
    sac::la::PackedGemmAccum(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
// 64 forwards to the unpacked loop (below threshold); 128+ pack. The
// 512 point is the backend-ablation gate's shape (docs/KERNELS.md).
BENCHMARK(BM_GemmPacked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmJvmlike(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tile a = RandomTile(n, 1), b = RandomTile(n, 2), c(n, n);
  for (auto _ : state) {
    sac::la::jvmlike::TileGemmAccum(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmJvmlike)->Arg(64)->Arg(128);

void BM_AddFast(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tile a = RandomTile(n, 3), b = RandomTile(n, 4), c;
  for (auto _ : state) {
    sac::la::Add(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_AddFast)->Arg(256);

void BM_AddJvmlike(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tile a = RandomTile(n, 3), b = RandomTile(n, 4), c;
  for (auto _ : state) {
    sac::la::jvmlike::TileAdd(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_AddJvmlike)->Arg(256);

void BM_Transpose(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tile a = RandomTile(n, 5), c;
  for (auto _ : state) {
    sac::la::Transpose(a, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_Transpose)->Arg(256);

void BM_ValueTileSerialize(benchmark::State& state) {
  using sac::runtime::Value;
  const int64_t n = state.range(0);
  Value v = Value::TileVal(RandomTile(n, 6));
  for (auto _ : state) {
    sac::ByteWriter w;
    v.Serialize(&w);
    sac::ByteReader r(w.buffer());
    auto back = Value::Deserialize(&r);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_ValueTileSerialize)->Arg(128)->Arg(256);

void BM_EngineReduceByKey(benchmark::State& state) {
  using namespace sac::runtime;  // NOLINT
  Engine eng(ClusterConfig{4, 2, 8});
  ValueVec rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back(VPair(VInt(i % 100), VDouble(i)));
  }
  Dataset ds = eng.Parallelize(std::move(rows), 8);
  for (auto _ : state) {
    auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
      return VDouble(a.AsDouble() + b.AsDouble());
    });
    benchmark::DoNotOptimize(red);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_EngineReduceByKey);

}  // namespace

BENCHMARK_MAIN();
