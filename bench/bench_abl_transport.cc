// Transport ablation / chaos gate: the Figure 4.B multiply run through
// the distributed runtime (docs/DISTRIBUTED.md) in three shapes --
//
//   single       no workers: the engine exactly as every other bench
//                runs it (the bit-for-bit default path)
//   loopback-3w  3 in-process workers behind the loopback transport
//                (full frame codec, no sockets)
//   tcp-3w       3 in-process workers behind real 127.0.0.1 sockets
//
// The gate FAILS (nonzero exit) unless: all three products are
// byte-identical, the distributed runs moved real wire bytes, loopback
// and TCP meter *identical* wire-byte counts (same buckets, same codec),
// shuffle-byte accounting is transport-independent, and the TCP overhead
// stays within a loose multiple of loopback.
//
// `--chaos` switches to the external-cluster kill test: it requires
// SAC_WORKERS to name running sac_worker processes (scripts/check.sh
// launches three), runs the same multiply over them, kill -9s one worker
// the moment wire bytes start flowing, and FAILS unless the final
// product is still byte-identical to the single-process run with
// workers_lost >= 1 and partitions_reexecuted > 0 -- the lineage
// re-execution path, exercised against a real process death.
#include "bench/bench_common.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/api/algorithms.h"
#include "src/dist/coordinator.h"

namespace {

/// Byte-exact product comparison: the transport must deliver the exact
/// bucket bytes the map side serialized (CRC-checked frames), and
/// lineage re-execution is deterministic, so any drift is a dist bug,
/// not rounding.
bool SameTile(const sac::la::Tile& a, const sac::la::Tile& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.vec().data(), b.vec().data(),
                     a.vec().size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sac;         // NOLINT
  using namespace sac::bench;  // NOLINT

  bool smoke = false;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }
  const int64_t n = smoke ? 96 : 160;
  const int64_t block = 32;

  int violations = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "TRANSPORT GATE VIOLATION: %s\n", what);
      ++violations;
    }
  };

  struct RunResult {
    Row row;
    la::Tile product{0, 0};
  };

  // One multiply under `cfg`, timed the standard way (ResetStats per rep;
  // totals are the last rep's, so every series meters one identical run).
  auto run = [&](BenchReporter* reporter, const std::string& series,
                 runtime::ClusterConfig cfg) -> RunResult {
    planner::PlannerOptions opts;
    opts.auto_strategy = false;  // pin the plan: this ablates the wire
    Sac ctx(cfg, opts);
    auto a = ctx.RandomMatrix(n, n, block, 301, 0.0, 10.0).value();
    auto b = ctx.RandomMatrix(n, n, block, 302, 0.0, 10.0).value();
    RunResult out;
    storage::TiledMatrix c;
    out.row = TimeQuery(&ctx, "abl_transport", series, n, n * n, [&] {
      auto r = algo::Multiply(&ctx, a, b);
      SAC_BENCH_CHECK(r);
      c = std::move(r).value();
    });
    reporter->Report(out.row);
    reporter->CaptureTrace(&ctx);
    out.product = ctx.ToLocal(c).value();
    return out;
  };

  if (!chaos) {
    // ---- ablation mode: single vs loopback vs TCP, in-process --------
    if (std::getenv("SAC_WORKERS") != nullptr ||
        std::getenv("SAC_TRANSPORT") != nullptr) {
      std::fprintf(stderr,
                   "TRANSPORT GATE VIOLATION: SAC_WORKERS/SAC_TRANSPORT "
                   "set; they would override the single-process "
                   "baseline (use --chaos for the external cluster)\n");
      return 1;
    }
    PrintHeader(
        "Transport ablation: fig4b multiply, single process vs 3 workers "
        "over loopback vs TCP");
    BenchReporter reporter("abl_transport", argc, argv);

    auto dist_cfg = [&](const char* transport) {
      runtime::ClusterConfig cfg = BenchCluster();
      cfg.workers = "3";
      cfg.transport = transport;
      // No background heartbeat: its pings would smear nondeterministic
      // wire bytes over the loopback-vs-TCP equality gate below.
      cfg.heartbeat_interval_ms = 0;
      return cfg;
    };
    const RunResult single = run(&reporter, "single", BenchCluster());
    const RunResult lo = run(&reporter, "loopback-3w", dist_cfg("loopback"));
    const RunResult tcp = run(&reporter, "tcp-3w", dist_cfg("tcp"));

    expect(SameTile(single.product, lo.product),
           "loopback product differs from single-process");
    expect(SameTile(single.product, tcp.product),
           "tcp product differs from single-process");
    expect(single.row.totals.dist_bytes_sent == 0,
           "single-process run metered dist wire bytes");
    expect(lo.row.totals.dist_bytes_sent > 0,
           "loopback run moved no wire bytes; the transport never ran");
    expect(tcp.row.totals.dist_bytes_received > 0,
           "tcp run received no wire bytes");
    expect(lo.row.totals.dist_bytes_sent == tcp.row.totals.dist_bytes_sent &&
               lo.row.totals.dist_bytes_received ==
                   tcp.row.totals.dist_bytes_received,
           "loopback and tcp wire-byte accounting disagree (same buckets, "
           "same codec: they must be identical)");
    // Shuffle accounting (local fast path + serialized cross-executor)
    // is transport-independent: distribution changes where bucket bytes
    // live, never how many there are.
    expect(single.row.totals.shuffle_bytes +
                   single.row.totals.local_shuffle_bytes ==
               tcp.row.totals.shuffle_bytes +
                   tcp.row.totals.local_shuffle_bytes,
           "shuffle-byte accounting changed under distribution");
    expect(lo.row.totals.workers_lost == 0 &&
               tcp.row.totals.workers_lost == 0,
           "a healthy run lost workers");
    // Loose overhead bound: TCP adds syscalls and memcpy per bucket, not
    // algorithmic work; blowing far past loopback means a transport
    // pathology (per-call reconnects, lost parked connections).
    expect(tcp.row.time_ms <= lo.row.time_ms * 10.0 + 2000.0,
           "tcp overhead exceeds 10x loopback + 2s");

    if (violations > 0) {
      std::fprintf(stderr, "transport gate: %d violation(s)\n", violations);
      return 1;
    }
    std::printf(
        "transport gate: ok (dist wire %.2f MB each way, tcp %.1f ms vs "
        "loopback %.1f ms)\n",
        tcp.row.totals.dist_bytes_sent / 1048576.0, tcp.row.time_ms,
        lo.row.time_ms);
    return 0;
  }

  // ---- chaos mode: external cluster, kill -9 one worker mid-shuffle --
  const char* workers_env = std::getenv("SAC_WORKERS");
  if (workers_env == nullptr || *workers_env == '\0') {
    std::fprintf(stderr,
                 "chaos mode needs SAC_WORKERS=host:port,... naming "
                 "running sac_worker processes\n");
    return 2;
  }
  const std::string workers = workers_env;

  PrintHeader(
      "Transport chaos: fig4b multiply over external workers, one killed "
      "mid-shuffle");
  BenchReporter reporter("abl_transport_chaos", argc, argv);

  // Baseline first, with the env cleared so the engine stays
  // single-process (the env override wins over config by design).
  ::unsetenv("SAC_WORKERS");
  ::unsetenv("SAC_TRANSPORT");
  const RunResult baseline = run(&reporter, "single", BenchCluster());
  ::setenv("SAC_WORKERS", workers.c_str(), 1);

  planner::PlannerOptions popts;
  popts.auto_strategy = false;
  Sac ctx(BenchCluster(), popts);  // env routes it to the external cluster
  runtime::Engine& eng = ctx.engine();
  if (!eng.distributed()) {
    std::fprintf(stderr, "chaos: engine did not come up distributed\n");
    return 2;
  }
  const int victim = eng.coordinator()->num_workers() - 1;
  const uint64_t victim_pid = eng.coordinator()->WorkerPid(victim);
  expect(victim_pid > 0, "coordinator never learned the victim's pid");

  auto a = ctx.RandomMatrix(n, n, block, 301, 0.0, 10.0).value();
  auto b = ctx.RandomMatrix(n, n, block, 302, 0.0, 10.0).value();

  // The assassin: the moment wire bytes start flowing (the shuffle's
  // push phase -- SAC_WORKER_DELAY_US on the workers stretches it), the
  // victim dies for real. kill -9: no flush, no goodbye, exactly the
  // failure docs/FAULT_MODEL.md promises to survive.
  std::atomic<bool> killed{false};
  std::atomic<bool> stop{false};
  std::thread assassin([&] {
    for (int i = 0; i < 30000 && !stop.load(); ++i) {
      if (eng.metrics().Snapshot().dist_bytes_sent > 8192) {
        ::kill(static_cast<pid_t>(victim_pid), SIGKILL);
        killed.store(true);
        std::fprintf(stderr, "chaos: killed worker %d (pid %llu)\n", victim,
                     static_cast<unsigned long long>(victim_pid));
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // One run, timed by hand: TimeQuery's per-rep ResetStats would wipe
  // the workers_lost/reexecuted evidence the gate needs.
  ctx.ResetStats();
  Stopwatch sw;
  storage::TiledMatrix c;
  {
    auto r = algo::Multiply(&ctx, a, b);
    SAC_BENCH_CHECK(r);
    c = std::move(r).value();
  }
  Row row{};
  row.figure = "abl_transport";
  row.series = "tcp-chaos";
  row.n = n;
  row.elements = n * n;
  row.time_ms = sw.ElapsedMillis();
  row.totals = ctx.metrics().Snapshot();
  row.stages = ctx.stages().Snapshot();
  row.shuffle_mb = row.totals.shuffle_bytes / (1024.0 * 1024.0);
  reporter.Report(row);
  reporter.CaptureTrace(&ctx);
  stop.store(true);
  assassin.join();

  const la::Tile product = ctx.ToLocal(c).value();
  expect(killed.load(), "assassin never fired: no wire bytes flowed");
  expect(SameTile(baseline.product, product),
         "post-kill product is not byte-identical to single-process");
  expect(row.totals.workers_lost >= 1,
         "the kill was never detected (workers_lost == 0)");
  expect(row.totals.partitions_reexecuted > 0,
         "no lineage re-execution despite a dead worker");
  expect(row.totals.dist_bytes_sent > 0, "no wire bytes metered");

  if (violations > 0) {
    std::fprintf(stderr, "chaos gate: %d violation(s)\n", violations);
    return 1;
  }
  std::printf(
      "chaos gate: ok (killed pid %llu mid-shuffle; %llu worker(s) lost, "
      "%llu partition(s) re-executed, product byte-identical)\n",
      static_cast<unsigned long long>(victim_pid),
      static_cast<unsigned long long>(row.totals.workers_lost),
      static_cast<unsigned long long>(row.totals.partitions_reexecuted));
  return 0;
}
