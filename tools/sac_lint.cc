// sac_lint: command-line front end of the static analyzer (src/analysis/).
//
// Input files hold binding directives followed by one query expression:
//
//   # comments are fine anywhere (the lexer skips them)
//   % matrix A 256 192        # rows cols [block], default block 64
//   % matrix B 192 128
//   % vector x 256            # size [block]
//   % coo    S 256 256        # rows cols
//   % scalar n 256
//   tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
//               kk == k, let v = a*b, group by (i,j) ]
//
// Directive lines are blanked (not removed) before parsing, so every
// diagnostic's line:col agrees with the file as written. Queries are
// analyzed only -- no engine operator ever runs, so declared arrays need
// no data.
//
// Exit status: 0 clean, 1 diagnostics reported (errors, or warnings under
// --Werror), 2 usage/input problems.
//
// Flags:
//   --Werror       treat warnings as errors for the exit status
//   --explain      also print the chosen strategy and symbolic plan
//   --list-rules   print the lint-rule catalog and exit

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analysis.h"
#include "src/analysis/lint.h"
#include "src/planner/plan.h"
#include "src/runtime/value.h"
#include "src/storage/tiled.h"

namespace {

using sac::analysis::AnalysisReport;
using sac::analysis::Diagnostic;
using sac::planner::Binding;
using sac::planner::Bindings;

struct ParsedFile {
  Bindings binds;
  std::string query;  // directive lines blanked, positions preserved
};

/// Parses one `% kind name args...` directive. Returns false (with a
/// message on stderr) on malformed input.
bool ParseDirective(const std::string& line, int lineno,
                    const std::string& file, Bindings* binds) {
  std::istringstream in(line);
  std::string percent, kind, name;
  in >> percent >> kind >> name;
  auto fail = [&](const std::string& why) {
    std::cerr << file << ":" << lineno << ": bad directive: " << why << "\n";
    return false;
  };
  if (name.empty()) return fail("expected '% <kind> <name> ...'");
  if (kind == "matrix" || kind == "coo") {
    int64_t rows = -1, cols = -1, block = 64;
    in >> rows >> cols;
    if (rows <= 0 || cols <= 0) return fail("expected '" + kind + " NAME ROWS COLS [BLOCK]'");
    in >> block;  // optional; keeps 64 on failure
    if (block <= 0) return fail("block must be positive");
    if (kind == "matrix") {
      binds->emplace(name, Binding::Tiled(sac::storage::TiledMatrix{
                               rows, cols, block, nullptr}));
    } else {
      binds->emplace(name,
                     Binding::Coo(sac::storage::CooMatrix{rows, cols, nullptr}));
    }
    return true;
  }
  if (kind == "vector") {
    int64_t size = -1, block = 64;
    in >> size;
    if (size <= 0) return fail("expected 'vector NAME SIZE [BLOCK]'");
    in >> block;
    if (block <= 0) return fail("block must be positive");
    binds->emplace(name, Binding::Vector(sac::storage::BlockVector{
                             size, block, nullptr}));
    return true;
  }
  if (kind == "scalar") {
    std::string value;
    in >> value;
    if (value.empty()) return fail("expected 'scalar NAME VALUE'");
    try {
      if (value.find_first_of(".eE") == std::string::npos) {
        binds->emplace(name, Binding::Scalar(sac::runtime::Value::Int(
                                 std::stoll(value))));
      } else {
        binds->emplace(name, Binding::Scalar(sac::runtime::Value::Double(
                                 std::stod(value))));
      }
    } catch (const std::exception&) {
      return fail("'" + value + "' is not a number");
    }
    return true;
  }
  return fail("unknown binding kind '" + kind +
              "' (matrix, vector, coo, scalar)");
}

bool LoadFile(const std::string& path, ParsedFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::string line;
  int lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate leading whitespace before '%'.
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '%') {
      ok = ParseDirective(line.substr(first), lineno, path, &out->binds) && ok;
      out->query += "\n";  // keep line numbers aligned with the file
      continue;
    }
    out->query += line;
    out->query += "\n";
  }
  return ok;
}

void PrintRuleCatalog() {
  std::cout << "comprehension checks (errors):\n"
            << "  SAC-E000  syntax error\n"
            << "  SAC-E001  unbound variable\n"
            << "  SAC-E002  generator iterates over a scalar\n"
            << "  SAC-E003  index arity mismatch\n"
            << "  SAC-E004  dimension conformance (inner-dimension mismatch)\n"
            << "  SAC-E005  scalar/tile confusion\n"
            << "  SAC-E006  no translation strategy applies\n"
            << "  SAC-E007  plan invariant violated (planner bug guard)\n"
            << "plan lints (warnings):\n";
  for (const sac::analysis::LintRule* rule : sac::analysis::LintRules()) {
    std::cout << "  " << rule->code() << "   " << rule->summary() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool explain = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--Werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      PrintRuleCatalog();
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "unknown flag '" << argv[i] << "'\n";
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: sac_lint [--Werror] [--explain] [--list-rules] "
                 "FILE...\n";
    return 2;
  }

  bool any_error = false;
  bool any_warning = false;
  for (const std::string& file : files) {
    ParsedFile parsed;
    if (!LoadFile(file, &parsed)) return 2;
    auto report = sac::analysis::AnalyzeQuery(parsed.query, parsed.binds);
    if (!report.ok()) {
      std::cerr << file << ": internal error: "
                << report.status().ToString() << "\n";
      return 2;
    }
    const AnalysisReport& r = report.value();
    for (const Diagnostic& d : r.diagnostics) {
      std::cout << d.Render(file) << "\n";
      if (d.severity == Diagnostic::Severity::kError) any_error = true;
      if (d.severity == Diagnostic::Severity::kWarning) any_warning = true;
    }
    if (explain && !r.strategy.empty()) {
      std::cout << file << ": strategy: " << r.strategy << "\n";
      if (!r.explanation.empty()) {
        std::cout << file << ":   " << r.explanation << "\n";
      }
      if (!r.plan_tree.empty()) std::cout << r.plan_tree;
    }
  }
  if (any_error || (werror && any_warning)) return 1;
  return 0;
}
