// sac_lint: command-line front end of the static analyzer (src/analysis/).
//
// Input files hold binding directives followed by one query expression:
//
//   # comments are fine anywhere (the lexer skips them)
//   % matrix A 256 192        # rows cols [block], default block 64
//   % matrix B 192 128
//   % vector x 256            # size [block]
//   % coo    S 256 256        # rows cols
//   % scalar n 256
//   tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
//               kk == k, let v = a*b, group by (i,j) ]
//
// Directive lines are blanked (not removed) before parsing, so every
// diagnostic's line:col agrees with the file as written. Queries are
// analyzed only -- no engine operator ever runs, so declared arrays need
// no data.
//
// Exit status: 0 clean, 1 diagnostics reported (errors, or warnings under
// --Werror), 2 usage/input problems.
//
// Flags:
//   --Werror         treat warnings as errors for the exit status
//   --explain        also print the chosen strategy and symbolic plan
//   --cost           also print the cost-model table (docs/COST_MODEL.md)
//   --format=sarif   emit one SARIF 2.1.0 log on stdout instead of text
//   --json=PATH      also write {"analysis_version":1,"files":[...]} with
//                    one machine-readable analysis object per input file
//   --calibrate      treat FILE args as BENCH_*.json reports and fit the
//                    cost-model constants to their measured counters
//   --list-rules     print the lint-rule catalog and exit

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analysis.h"
#include "src/analysis/cost.h"
#include "src/analysis/lint.h"
#include "src/common/json.h"
#include "src/common/trace.h"
#include "src/planner/plan.h"
#include "src/runtime/value.h"
#include "src/storage/tiled.h"

namespace {

using sac::analysis::AnalysisReport;
using sac::analysis::Diagnostic;
using sac::planner::Binding;
using sac::planner::Bindings;

struct ParsedFile {
  Bindings binds;
  std::string query;  // directive lines blanked, positions preserved
};

/// Parses one `% kind name args...` directive. Returns false (with a
/// message on stderr) on malformed input.
bool ParseDirective(const std::string& line, int lineno,
                    const std::string& file, Bindings* binds) {
  std::istringstream in(line);
  std::string percent, kind, name;
  in >> percent >> kind >> name;
  auto fail = [&](const std::string& why) {
    std::cerr << file << ":" << lineno << ": bad directive: " << why << "\n";
    return false;
  };
  if (name.empty()) return fail("expected '% <kind> <name> ...'");
  if (kind == "matrix" || kind == "coo") {
    int64_t rows = -1, cols = -1, block = 64;
    in >> rows >> cols;
    if (rows <= 0 || cols <= 0) return fail("expected '" + kind + " NAME ROWS COLS [BLOCK]'");
    in >> block;  // optional; keeps 64 on failure
    if (block <= 0) return fail("block must be positive");
    if (kind == "matrix") {
      binds->emplace(name, Binding::Tiled(sac::storage::TiledMatrix{
                               rows, cols, block, nullptr}));
    } else {
      binds->emplace(name,
                     Binding::Coo(sac::storage::CooMatrix{rows, cols, nullptr}));
    }
    return true;
  }
  if (kind == "vector") {
    int64_t size = -1, block = 64;
    in >> size;
    if (size <= 0) return fail("expected 'vector NAME SIZE [BLOCK]'");
    in >> block;
    if (block <= 0) return fail("block must be positive");
    binds->emplace(name, Binding::Vector(sac::storage::BlockVector{
                             size, block, nullptr}));
    return true;
  }
  if (kind == "scalar") {
    std::string value;
    in >> value;
    if (value.empty()) return fail("expected 'scalar NAME VALUE'");
    try {
      if (value.find_first_of(".eE") == std::string::npos) {
        binds->emplace(name, Binding::Scalar(sac::runtime::Value::Int(
                                 std::stoll(value))));
      } else {
        binds->emplace(name, Binding::Scalar(sac::runtime::Value::Double(
                                 std::stod(value))));
      }
    } catch (const std::exception&) {
      return fail("'" + value + "' is not a number");
    }
    return true;
  }
  return fail("unknown binding kind '" + kind +
              "' (matrix, vector, coo, scalar)");
}

bool LoadFile(const std::string& path, ParsedFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::string line;
  int lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate leading whitespace before '%'.
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '%') {
      ok = ParseDirective(line.substr(first), lineno, path, &out->binds) && ok;
      out->query += "\n";  // keep line numbers aligned with the file
      continue;
    }
    out->query += line;
    out->query += "\n";
  }
  return ok;
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 output
// ---------------------------------------------------------------------------

const char* SarifLevel(Diagnostic::Severity s) {
  switch (s) {
    case Diagnostic::Severity::kError: return "error";
    case Diagnostic::Severity::kWarning: return "warning";
    case Diagnostic::Severity::kNote: return "note";
  }
  return "note";
}

/// One finding bound to the file it came from.
struct FileDiagnostic {
  std::string file;
  Diagnostic diag;
};

/// Renders one SARIF 2.1.0 log covering every analyzed file: the tool's
/// rule catalog (checker error codes + registered lint rules), then one
/// result per diagnostic with its physical location and -- for the
/// quantified rules -- an `estimatedBytes` property.
std::string RenderSarif(const std::vector<FileDiagnostic>& findings) {
  using sac::trace::JsonEscape;
  std::ostringstream os;
  os.precision(15);
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"sac_lint\",\"rules\":[";
  bool first = true;
  auto rule = [&](const std::string& id, const std::string& text) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"" << JsonEscape(id)
       << "\",\"shortDescription\":{\"text\":\"" << JsonEscape(text)
       << "\"}}";
  };
  rule("SAC-E000", "syntax error");
  rule("SAC-E001", "unbound variable");
  rule("SAC-E002", "generator iterates over a scalar");
  rule("SAC-E003", "index arity mismatch");
  rule("SAC-E004", "dimension conformance (inner-dimension mismatch)");
  rule("SAC-E005", "scalar/tile confusion");
  rule("SAC-E006", "no translation strategy applies");
  rule("SAC-E007", "plan invariant violated (planner bug guard)");
  for (const sac::analysis::LintRule* r : sac::analysis::LintRules()) {
    rule(r->code(), r->summary());
  }
  os << "]}},\"results\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Diagnostic& d = findings[i].diag;
    if (i > 0) os << ",";
    os << "{\"ruleId\":\"" << JsonEscape(d.code) << "\",\"level\":\""
       << SarifLevel(d.severity) << "\",\"message\":{\"text\":\""
       << JsonEscape(d.message) << "\"},\"locations\":[{"
       << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
       << JsonEscape(findings[i].file) << "\"}";
    if (d.span.IsSet()) {
      os << ",\"region\":{\"startLine\":" << d.span.begin.line
         << ",\"startColumn\":" << d.span.begin.col << "}";
    }
    os << "}}]";
    if (d.estimated_bytes > 0) {
      os << ",\"properties\":{\"estimatedBytes\":" << d.estimated_bytes
         << "}";
    }
    os << "}";
  }
  os << "]}]}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// --calibrate: fit the cost-model constants to committed BENCH reports
// ---------------------------------------------------------------------------

/// One bench row turned into a regression observation of
///   time_ms = cross/1e6 * a + local/1e6 * b + tasks/1e3 * c + flops/1e6 * d.
struct Observation {
  double features[4] = {0, 0, 0, 0};
  double time_ms = 0;
  std::string label;
};

/// Extracts the rows the model is calibrated on: the SAC series of fig4a
/// (elementwise addition, n^2 flops) and the SAC / SAC GBJ series of
/// fig4b (dense multiply, 2n^3 flops). MLlib rows model a different
/// kernel baseline and fig4c mixes whole-iteration loops; both excluded.
bool CollectObservations(const std::string& path,
                         std::vector<Observation>* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  sac::json::Value root;
  sac::Status st = sac::json::Parse(buf.str(), &root);
  if (!st.ok()) {
    std::cerr << path << ": " << st.ToString() << "\n";
    return false;
  }
  for (const sac::json::Value& row : root.At("rows").array) {
    const std::string figure = row.GetStr("figure");
    const std::string series = row.GetStr("series");
    const double n = row.GetNum("n");
    double flops = 0;
    if (figure == "fig4a" && series == "SAC") {
      flops = n * n;
    } else if (figure == "fig4b" &&
               (series == "SAC" || series == "SAC GBJ")) {
      flops = 2.0 * n * n * n;
    } else {
      continue;
    }
    const sac::json::Value& totals = row.At("totals");
    const double shuffle = totals.GetNum("shuffle_bytes");
    const double cross = totals.GetNum("cross_executor_bytes");
    // Older reports counted tasks under "tasks_run".
    const double tasks =
        totals.Has("tasks") ? totals.GetNum("tasks")
                            : totals.GetNum("tasks_run");
    Observation ob;
    ob.features[0] = cross / 1e6;
    ob.features[1] = (shuffle - cross) / 1e6;
    ob.features[2] = tasks / 1e3;
    ob.features[3] = flops / 1e6;
    ob.time_ms = row.GetNum("time_ms");
    ob.label = figure + "/" + series + " n=" +
               std::to_string(static_cast<int64_t>(n));
    out->push_back(ob);
  }
  return true;
}

/// Non-negative least squares on the 4x4 normal equations via projected
/// coordinate descent: each pass minimizes over one coefficient with the
/// others held fixed, clamped at zero. Plain OLS turns the near-collinear
/// byte columns (cross is a fixed fraction of total within one figure)
/// into negative ns/byte rates; the non-negativity constraint is what
/// keeps the fitted constants physically meaningful. Returns false when a
/// feature column is entirely absent from the observations.
bool FitConstants(const std::vector<Observation>& obs, double coef[4]) {
  double ata[4][4] = {};
  double atb[4] = {};
  for (const Observation& ob : obs) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        ata[i][j] += ob.features[i] * ob.features[j];
      }
      atb[i] += ob.features[i] * ob.time_ms;
    }
  }
  for (int i = 0; i < 4; ++i) {
    if (ata[i][i] < 1e-12) return false;
    coef[i] = 0;
  }
  for (int pass = 0; pass < 500; ++pass) {
    double delta = 0;
    for (int i = 0; i < 4; ++i) {
      double num = atb[i];
      for (int j = 0; j < 4; ++j) {
        if (j != i) num -= ata[i][j] * coef[j];
      }
      const double next = std::max(0.0, num / ata[i][i]);
      delta = std::max(delta, std::fabs(next - coef[i]));
      coef[i] = next;
    }
    if (delta < 1e-9) break;
  }
  return true;
}

int RunCalibrate(const std::vector<std::string>& files) {
  std::vector<Observation> obs;
  for (const std::string& f : files) {
    if (!CollectObservations(f, &obs)) return 2;
  }
  if (obs.size() < 4) {
    std::cerr << "calibrate: only " << obs.size()
              << " usable rows (need >= 4); pass BENCH_fig4a/BENCH_fig4b "
                 "reports\n";
    return 2;
  }
  double coef[4];
  if (!FitConstants(obs, coef)) {
    std::cerr << "calibrate: singular system; rows are not independent\n";
    return 2;
  }
  const sac::analysis::CostModel shipped;
  std::cout << "calibration over " << obs.size() << " rows:\n";
  std::cout.precision(3);
  std::cout << std::fixed;
  std::cout << "  ns_per_cross_byte = " << coef[0] << "   (shipped "
            << shipped.ns_per_cross_byte << ")\n"
            << "  ns_per_local_byte = " << coef[1] << "   (shipped "
            << shipped.ns_per_local_byte << ")\n"
            << "  us_per_task       = " << coef[2] << "   (shipped "
            << shipped.us_per_task << ")\n"
            << "  ns_per_flop       = " << coef[3] << "   (shipped "
            << shipped.ns_per_flop << ")\n";
  double abs_err = 0;
  double abs_y = 0;
  for (const Observation& ob : obs) {
    double pred = 0;
    for (int i = 0; i < 4; ++i) pred += coef[i] * ob.features[i];
    abs_err += std::fabs(pred - ob.time_ms);
    abs_y += std::fabs(ob.time_ms);
  }
  std::cout << "  fit: mean |err| = " << abs_err / obs.size() << " ms ("
            << (abs_y > 0 ? 100.0 * abs_err / abs_y : 0)
            << "% of measured)\n";
  return 0;
}

void PrintRuleCatalog() {
  std::cout << "comprehension checks (errors):\n"
            << "  SAC-E000  syntax error\n"
            << "  SAC-E001  unbound variable\n"
            << "  SAC-E002  generator iterates over a scalar\n"
            << "  SAC-E003  index arity mismatch\n"
            << "  SAC-E004  dimension conformance (inner-dimension mismatch)\n"
            << "  SAC-E005  scalar/tile confusion\n"
            << "  SAC-E006  no translation strategy applies\n"
            << "  SAC-E007  plan invariant violated (planner bug guard)\n"
            << "plan lints (warnings):\n";
  for (const sac::analysis::LintRule* rule : sac::analysis::LintRules()) {
    std::cout << "  " << rule->code() << "   " << rule->summary() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool explain = false;
  bool cost = false;
  bool sarif = false;
  bool calibrate = false;
  std::string json_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--Werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--cost") == 0) {
      cost = true;
    } else if (std::strcmp(argv[i], "--calibrate") == 0) {
      calibrate = true;
    } else if (std::strcmp(argv[i], "--format=sarif") == 0) {
      sarif = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      PrintRuleCatalog();
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "unknown flag '" << argv[i] << "'\n";
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: sac_lint [--Werror] [--explain] [--cost] "
                 "[--format=sarif] [--json=PATH] [--calibrate] "
                 "[--list-rules] FILE...\n";
    return 2;
  }
  if (calibrate) return RunCalibrate(files);

  bool any_error = false;
  bool any_warning = false;
  std::vector<FileDiagnostic> findings;  // --format=sarif
  std::string json_files;                // --json=PATH
  for (const std::string& file : files) {
    ParsedFile parsed;
    if (!LoadFile(file, &parsed)) return 2;
    auto report = sac::analysis::AnalyzeQuery(parsed.query, parsed.binds);
    if (!report.ok()) {
      std::cerr << file << ": internal error: "
                << report.status().ToString() << "\n";
      return 2;
    }
    const AnalysisReport& r = report.value();
    for (const Diagnostic& d : r.diagnostics) {
      if (sarif) {
        findings.push_back(FileDiagnostic{file, d});
      } else {
        std::cout << d.Render(file) << "\n";
      }
      if (d.severity == Diagnostic::Severity::kError) any_error = true;
      if (d.severity == Diagnostic::Severity::kWarning) any_warning = true;
    }
    if (!json_path.empty()) {
      std::string one = sac::analysis::RenderAnalysisJson(r, file);
      while (!one.empty() && one.back() == '\n') one.pop_back();
      if (!json_files.empty()) json_files += ",";
      json_files += one;
    }
    if (!sarif && explain && !r.strategy.empty()) {
      std::cout << file << ": strategy: " << r.strategy << "\n";
      if (!r.explanation.empty()) {
        std::cout << file << ":   " << r.explanation << "\n";
      }
      if (!r.plan_tree.empty()) std::cout << r.plan_tree;
    }
    if (!sarif && cost && r.has_cost) {
      std::cout << file << ":\n" << r.cost_table;
    }
  }
  if (sarif) std::cout << RenderSarif(findings);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << json_path << ": cannot write\n";
      return 2;
    }
    out << "{\"analysis_version\":1,\"files\":[" << json_files << "]}\n";
  }
  if (any_error || (werror && any_warning)) return 1;
  return 0;
}
