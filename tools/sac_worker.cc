// sac_worker: one partition-hosting worker process. It owns nothing but
// a dist::WorkerState (the bucket store) and a net::TcpServer that feeds
// it frames; placement, liveness, and retries all live on the driver
// (src/dist/coordinator.h). scripts/check.sh launches three of these on
// localhost for the chaos gate, then kill -9s one mid-shuffle.
//
// Usage: sac_worker [--port=N]        (N=0 or absent: kernel-assigned)
//
// Environment:
//   SAC_WORKER_DELAY_US  sleep before serving each PutBucket; stretches
//                        the shuffle window so a chaos kill lands
//                        mid-stream (docs/DISTRIBUTED.md).
//
// Prints exactly one readiness line to stdout once the listener is live:
//   sac_worker ready port=<port> pid=<pid>
// Harnesses parse it for the bound port (ephemeral-port runs) and the
// kill target. Exits 0 on SIGTERM/SIGINT or a kShutdown frame.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/dist/worker.h"
#include "src/net/tcp.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int /*sig*/) { g_stop.store(true, std::memory_order_release); }

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atoi(argv[i] + 7);
    } else {
      std::fprintf(stderr, "usage: %s [--port=N]\n", argv[0]);
      return 2;
    }
  }

  sac::dist::WorkerState state;
  if (const char* delay = std::getenv("SAC_WORKER_DELAY_US")) {
    state.set_put_delay_us(std::atoll(delay));
  }

  sac::net::TcpServer server(
      [&state](const sac::net::Frame& f) { return state.Handle(f); });
  const sac::Status st = server.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "sac_worker: %s\n", st.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  std::printf("sac_worker ready port=%d pid=%d\n", server.port(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  while (!g_stop.load(std::memory_order_acquire) &&
         !state.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  return 0;
}
