// sac_prof: CLI over the query profiler (src/common/profile.h).
//
//   sac_prof [summary] <profile.json>
//       Human-readable summary: critical path with per-stage wall-clock
//       attribution, top stages (total/self/task/exclusive time, task
//       percentiles), phase breakdowns, joined counters, sampler stats.
//
//   sac_prof check <profile.json> [--min-coverage <pct>]
//       Gate mode for CI: exits non-zero unless the critical path is
//       non-empty, covers at least --min-coverage (default 80) percent
//       of measured wall-clock, and the per-stage exclusive times sum to
//       no more than the wall time (within tolerance).
//
//   sac_prof diff <base.json> <current.json> [threshold flags]
//       Noise-aware regression diff. Inputs may be two profile.json
//       documents or two BENCH_*.json bench reports (auto-detected;
//       bench rows are matched on (figure, series, n)). A metric
//       regresses only when it worsens by BOTH the relative and the
//       absolute threshold. Exits non-zero when any regression is found.
//       Flags: --time-pct --time-abs-ms --bytes-pct --bytes-abs
//              --count-pct --count-abs
//
//   sac_prof predcheck <BENCH.json> [--max-ratio R]
//       Cost-model accuracy gate: for every bench row carrying a
//       "predicted" object (compile-time shuffle bytes per engine stage
//       label), compares against the measured per-label stage counters
//       (shuffle_bytes + local_shuffle_bytes) and fails when prediction
//       and measurement disagree by more than --max-ratio (default 2.0)
//       in either direction. Labels where both sides are under 64 KiB
//       are skipped as noise. Exits non-zero on any violation, or when
//       the report contains no predictions at all (a vacuous pass would
//       hide a plumbing break). See docs/COST_MODEL.md.
//
// See docs/PROFILING.md for the profile schema and semantics.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/profile.h"
#include "src/common/status.h"

namespace sac {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: sac_prof [summary] <profile.json>\n"
      "       sac_prof check <profile.json> [--min-coverage <pct>]\n"
      "       sac_prof diff <base.json> <current.json>\n"
      "           [--time-pct P] [--time-abs-ms MS] [--bytes-pct P]\n"
      "           [--bytes-abs B] [--count-pct P] [--count-abs C]\n"
      "       sac_prof predcheck <BENCH.json> [--max-ratio R]\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::RuntimeError("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::RuntimeError("failed reading '" + path + "'");
  }
  return os.str();
}

double Ms(uint64_t us) { return static_cast<double>(us) / 1000.0; }

// ---------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------

void PrintSummary(const profile::Profile& p) {
  std::printf("profile%s%s\n", p.query.empty() ? "" : ": ",
              p.query.c_str());
  std::printf("  wall          %10.3f ms\n", p.wall_ms);
  std::printf("  trace extent  %10.3f ms\n", p.trace_extent_ms);
  std::printf("  coverage      %9.1f %% of wall explained by the "
              "critical path\n",
              p.coverage_pct);
  if (p.dropped_trace_events > 0) {
    std::printf("  WARNING: %llu trace events dropped (span buffer cap); "
                "times underestimate\n",
                static_cast<unsigned long long>(p.dropped_trace_events));
  }

  std::printf("\ncritical path (exclusive wall-clock attribution):\n");
  if (p.critical_path.empty()) {
    std::printf("  (empty -- no spans covered the measured interval)\n");
  }
  for (int idx : p.critical_path) {
    const profile::StageProfile& s = p.stages[static_cast<size_t>(idx)];
    std::printf("  %6.1f%%  %10.3f ms  %s (%s)\n", s.wall_pct,
                Ms(s.exclusive_us), s.name.c_str(), s.category.c_str());
  }

  std::printf("\ntop stages by total time:\n");
  std::printf("  %-28s %-8s %5s %10s %10s %10s %10s %8s %8s %8s\n",
              "stage", "category", "count", "total_ms", "self_ms",
              "task_ms", "excl_ms", "p50_us", "p95_us", "max_us");
  size_t shown = 0;
  for (const profile::StageProfile& s : p.stages) {
    if (shown++ >= 15) break;
    std::printf(
        "  %-28s %-8s %5llu %10.3f %10.3f %10.3f %10.3f %8llu %8llu "
        "%8llu\n",
        s.name.c_str(), s.category.c_str(),
        static_cast<unsigned long long>(s.count), Ms(s.total_us),
        Ms(s.self_us), Ms(s.task_time_us), Ms(s.exclusive_us),
        static_cast<unsigned long long>(s.task_p50_us),
        static_cast<unsigned long long>(s.task_p95_us),
        static_cast<unsigned long long>(s.longest_task_us));
    for (const profile::PhaseProfile& ph : s.phases) {
      std::printf("      phase %-12s tasks=%-6llu busy=%.3fms "
                  "task_time=%.3fms longest=%.3fms\n",
                  ph.phase.c_str(),
                  static_cast<unsigned long long>(ph.task_count),
                  Ms(ph.busy_us), Ms(ph.task_time_us),
                  Ms(ph.longest_task_us));
    }
  }
  if (p.stages.size() > shown) {
    std::printf("  ... %zu more stages\n", p.stages.size() - shown);
  }

  std::printf("\ntotals: shuffle %.2f MB (%llu records), cross-executor "
              "%.2f MB, tasks %llu, evictions %llu (%.2f MB)\n",
              static_cast<double>(p.totals.shuffle_bytes +
                                  p.totals.local_shuffle_bytes) /
                  (1024.0 * 1024.0),
              static_cast<unsigned long long>(p.totals.shuffle_records),
              static_cast<double>(p.totals.cross_executor_bytes) /
                  (1024.0 * 1024.0),
              static_cast<unsigned long long>(p.totals.tasks_run),
              static_cast<unsigned long long>(p.totals.evictions),
              static_cast<double>(p.totals.bytes_evicted) /
                  (1024.0 * 1024.0));

  if (!p.samples.empty()) {
    // Per-key min/max over the sampler time series.
    std::printf("\nsampler: %zu samples over %.3f ms\n", p.samples.size(),
                Ms(p.samples.back().t_us - p.samples.front().t_us));
    std::vector<std::string> keys;
    for (const trace::SpanArg& a : p.samples.front().values) {
      keys.push_back(a.key);
    }
    for (const std::string& key : keys) {
      int64_t lo = 0, hi = 0;
      bool seen = false;
      for (const profile::Sample& s : p.samples) {
        for (const trace::SpanArg& a : s.values) {
          if (a.key != key) continue;
          if (!seen) {
            lo = hi = a.value;
            seen = true;
          } else {
            lo = std::min(lo, a.value);
            hi = std::max(hi, a.value);
          }
        }
      }
      if (seen) {
        std::printf("  %-18s min=%lld max=%lld\n", key.c_str(),
                    static_cast<long long>(lo), static_cast<long long>(hi));
      }
    }
  }
}

// ---------------------------------------------------------------------
// check
// ---------------------------------------------------------------------

int RunCheck(const profile::Profile& p, double min_coverage) {
  int failures = 0;
  if (p.critical_path.empty()) {
    std::fprintf(stderr, "FAIL: critical path is empty\n");
    ++failures;
  }
  if (p.coverage_pct < min_coverage) {
    std::fprintf(stderr,
                 "FAIL: critical path covers %.1f%% of wall-clock, "
                 "need >= %.1f%%\n",
                 p.coverage_pct, min_coverage);
    ++failures;
  }
  uint64_t exclusive_sum = 0;
  for (const profile::StageProfile& s : p.stages) {
    exclusive_sum += s.exclusive_us;
  }
  // The sweep is exclusive, so the sum can never legitimately exceed the
  // measured wall; 1% tolerance absorbs clock granularity.
  if (Ms(exclusive_sum) > p.wall_ms * 1.01 + 0.5) {
    std::fprintf(stderr,
                 "FAIL: exclusive times sum to %.3f ms, more than the "
                 "%.3f ms wall\n",
                 Ms(exclusive_sum), p.wall_ms);
    ++failures;
  }
  if (failures == 0) {
    std::printf("OK: critical path %zu stage(s), coverage %.1f%% "
                "(>= %.1f%%), exclusive sum %.3f / %.3f ms wall\n",
                p.critical_path.size(), p.coverage_pct, min_coverage,
                Ms(exclusive_sum), p.wall_ms);
  }
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------

/// Bench-report diff: rows matched on (figure, series, n).
int DiffBenchReports(const json::Value& base, const json::Value& cur,
                     const profile::DiffThresholds& t) {
  struct Key {
    std::string figure, series;
    int64_t n;
  };
  auto key_of = [](const json::Value& row) {
    return Key{row.GetStr("figure"), row.GetStr("series"),
               row.GetInt("n")};
  };
  auto shuffle_of = [](const json::Value& row) {
    const json::Value& tot = row.At("totals");
    return static_cast<double>(tot.GetUInt("shuffle_bytes") +
                               tot.GetUInt("local_shuffle_bytes"));
  };

  // Wall-clock only gates against a baseline from the same machine shape:
  // reports stamp host_cpus (bench_common.h), and a 4-executor run on 1
  // CPU is not comparable to the same run on 8. Counters (shuffle bytes /
  // records) are shape-independent and always gate. Unstamped baselines
  // (pre-host_cpus schema) count as unknown shape.
  const int64_t base_cpus = base.GetInt("host_cpus", 0);
  const int64_t cur_cpus = cur.GetInt("host_cpus", 0);
  const bool same_shape = base_cpus > 0 && base_cpus == cur_cpus;
  if (!same_shape) {
    std::printf(
        "note: host shapes differ or are unstamped (base %lld cpus, "
        "current %lld); time_ms deltas are informational, counters still "
        "gate\n",
        static_cast<long long>(base_cpus), static_cast<long long>(cur_cpus));
  }

  int regressions = 0;
  int matched = 0;
  std::printf("%-34s %-20s %14s %14s %9s\n", "row", "metric", "base",
              "current", "delta");
  for (const json::Value& brow : base.At("rows").array) {
    const Key k = key_of(brow);
    const json::Value* crow = nullptr;
    for (const json::Value& c : cur.At("rows").array) {
      const Key ck = key_of(c);
      if (ck.figure == k.figure && ck.series == k.series && ck.n == k.n) {
        crow = &c;
        break;
      }
    }
    const std::string row_name =
        k.figure + "/" + k.series + "/n=" + std::to_string(k.n);
    if (crow == nullptr) {
      std::printf("%-34s missing from current report\n", row_name.c_str());
      continue;
    }
    ++matched;
    struct M {
      const char* name;
      double b, c, rel, abs;
    };
    const json::Value& btot = brow.At("totals");
    const json::Value& ctot = crow->At("totals");
    const M metrics[] = {
        {"time_ms", brow.GetNum("time_ms"), crow->GetNum("time_ms"),
         t.time_pct, t.time_abs_ms},
        {"shuffle_bytes", shuffle_of(brow), shuffle_of(*crow), t.bytes_pct,
         t.bytes_abs},
        {"cross_executor_bytes",
         static_cast<double>(btot.GetUInt("cross_executor_bytes")),
         static_cast<double>(ctot.GetUInt("cross_executor_bytes")),
         t.bytes_pct, t.bytes_abs},
        {"shuffle_records",
         static_cast<double>(btot.GetUInt("shuffle_records")),
         static_cast<double>(ctot.GetUInt("shuffle_records")), t.count_pct,
         t.count_abs},
    };
    for (const M& m : metrics) {
      const bool worse = profile::IsRegression(m.b, m.c, m.rel, m.abs);
      const bool is_time = std::strcmp(m.name, "time_ms") == 0;
      const bool reg = worse && (same_shape || !is_time);
      const double pct = m.b > 0 ? (m.c - m.b) / m.b * 100.0 : 0.0;
      std::printf("%-34s %-20s %14.3f %14.3f %+8.1f%%%s\n",
                  row_name.c_str(), m.name, m.b, m.c, pct,
                  reg ? "  REGRESSION"
                      : (worse ? "  worse (not gated: host shape)" : ""));
      if (reg) ++regressions;
    }
  }
  if (matched == 0) {
    std::fprintf(stderr, "diff: no matching rows between the reports\n");
    return 1;
  }
  std::printf("%s\n", regressions == 0
                          ? "no regressions"
                          : (std::to_string(regressions) + " regression(s)")
                                .c_str());
  return regressions == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// predcheck
// ---------------------------------------------------------------------

/// Compares each row's compile-time shuffle predictions against the
/// measured per-label stage counters. Both sides are TOTAL moved bytes
/// (executor-local + cross-executor); the local/cross split is a model
/// assumption we deliberately do not gate on.
int RunPredcheck(const std::string& text, double max_ratio) {
  json::Value report;
  Status st = json::Parse(text, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "predcheck: %s\n", st.ToString().c_str());
    return 2;
  }
  if (!report.Has("rows")) {
    std::fprintf(stderr,
                 "predcheck: input is not a bench report (no \"rows\")\n");
    return 2;
  }
  // Below this, serialization overheads and per-partition headers dominate
  // and the ratio is meaningless noise.
  constexpr double kFloorBytes = 64.0 * 1024.0;

  int checked = 0, skipped = 0, failures = 0;
  std::printf("%-34s %-14s %12s %12s %7s\n", "row", "label",
              "predicted", "measured", "ratio");
  for (const json::Value& row : report.At("rows").array) {
    const std::string row_name = row.GetStr("figure") + "/" +
                                 row.GetStr("series") + "/n=" +
                                 std::to_string(row.GetInt("n"));
    if (!row.Has("predicted") || row.At("predicted").object.empty()) {
      continue;
    }
    for (const auto& [label, pred_val] : row.At("predicted").object) {
      const double predicted = pred_val.number;
      double measured = 0;
      if (row.Has("stages")) {
        for (const json::Value& stage : row.At("stages").array) {
          if (stage.GetStr("label") != label) continue;
          measured += static_cast<double>(stage.GetUInt("shuffle_bytes") +
                                          stage.GetUInt("local_shuffle_bytes"));
        }
      }
      if (predicted < kFloorBytes && measured < kFloorBytes) {
        ++skipped;
        continue;
      }
      ++checked;
      const double hi = std::max(predicted, measured);
      const double lo = std::min(predicted, measured);
      const double ratio = lo > 0 ? hi / lo : std::numeric_limits<double>::infinity();
      const bool bad = ratio > max_ratio;
      std::printf("%-34s %-14s %12.0f %12.0f %6.2fx%s\n", row_name.c_str(),
                  label.c_str(), predicted, measured, ratio,
                  bad ? "  FAIL" : "");
      if (bad) ++failures;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "predcheck: no predictions above the %0.f KiB floor in "
                 "this report (%d below-floor labels skipped) -- "
                 "refusing a vacuous pass\n",
                 kFloorBytes / 1024.0, skipped);
    return 1;
  }
  std::printf("%d label(s) checked, %d below noise floor, %d violation(s) "
              "of the %.1fx bound\n",
              checked, skipped, failures, max_ratio);
  return failures == 0 ? 0 : 1;
}

int RunDiff(const std::string& base_text, const std::string& cur_text,
            const profile::DiffThresholds& t) {
  json::Value base, cur;
  Status bs = json::Parse(base_text, &base);
  Status cs = json::Parse(cur_text, &cur);
  if (!bs.ok() || !cs.ok()) {
    std::fprintf(stderr, "diff: %s\n",
                 (!bs.ok() ? bs : cs).ToString().c_str());
    return 2;
  }
  const bool base_is_profile = base.Has("profile_version");
  const bool cur_is_profile = cur.Has("profile_version");
  if (base_is_profile != cur_is_profile) {
    std::fprintf(stderr,
                 "diff: cannot compare a profile with a bench report\n");
    return 2;
  }
  if (!base_is_profile) {
    if (!base.Has("rows") || !cur.Has("rows")) {
      std::fprintf(stderr, "diff: inputs are neither profiles "
                           "(profile_version) nor bench reports (rows)\n");
      return 2;
    }
    return DiffBenchReports(base, cur, t);
  }
  Result<profile::Profile> bp = profile::ParseProfile(base_text);
  Result<profile::Profile> cp = profile::ParseProfile(cur_text);
  if (!bp.ok() || !cp.ok()) {
    std::fprintf(stderr, "diff: %s\n",
                 (!bp.ok() ? bp.status() : cp.status()).ToString().c_str());
    return 2;
  }
  const profile::DiffResult d =
      profile::DiffProfiles(bp.value(), cp.value(), t);
  std::printf("%s", d.ToString().c_str());
  return d.regressions == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();

  std::string cmd = "summary";
  size_t i = 0;
  if (args[0] == "summary" || args[0] == "check" || args[0] == "diff" ||
      args[0] == "predcheck") {
    cmd = args[0];
    i = 1;
  }

  // Positional paths + flags.
  std::vector<std::string> paths;
  double min_coverage = 80.0;
  double max_ratio = 2.0;
  profile::DiffThresholds t;
  for (; i < args.size(); ++i) {
    auto flag_val = [&](const char* name, double* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      *out = std::atof(args[++i].c_str());
      return true;
    };
    if (flag_val("--min-coverage", &min_coverage)) continue;
    if (flag_val("--max-ratio", &max_ratio)) continue;
    if (flag_val("--time-pct", &t.time_pct)) continue;
    if (flag_val("--time-abs-ms", &t.time_abs_ms)) continue;
    if (flag_val("--bytes-pct", &t.bytes_pct)) continue;
    if (flag_val("--bytes-abs", &t.bytes_abs)) continue;
    if (flag_val("--count-pct", &t.count_pct)) continue;
    if (flag_val("--count-abs", &t.count_abs)) continue;
    if (args[i].rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", args[i].c_str());
      return Usage();
    }
    paths.push_back(args[i]);
  }

  if (cmd == "diff") {
    if (paths.size() != 2) return Usage();
    Result<std::string> base = ReadFile(paths[0]);
    Result<std::string> cur = ReadFile(paths[1]);
    if (!base.ok() || !cur.ok()) {
      std::fprintf(
          stderr, "sac_prof: %s\n",
          (!base.ok() ? base.status() : cur.status()).ToString().c_str());
      return 2;
    }
    return RunDiff(base.value(), cur.value(), t);
  }

  if (paths.size() != 1) return Usage();
  Result<std::string> text = ReadFile(paths[0]);
  if (!text.ok()) {
    std::fprintf(stderr, "sac_prof: %s\n",
                 text.status().ToString().c_str());
    return 2;
  }
  if (cmd == "predcheck") return RunPredcheck(text.value(), max_ratio);
  Result<profile::Profile> p = profile::ParseProfile(text.value());
  if (!p.ok()) {
    std::fprintf(stderr, "sac_prof: %s: %s\n", paths[0].c_str(),
                 p.status().ToString().c_str());
    return 2;
  }
  if (cmd == "check") return RunCheck(p.value(), min_coverage);
  PrintSummary(p.value());
  return 0;
}

}  // namespace
}  // namespace sac

int main(int argc, char** argv) { return sac::Main(argc, argv); }
