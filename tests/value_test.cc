#include "src/runtime/value.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace sac::runtime {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Unit().is_unit());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Int(3).AsDouble(), 3.0);  // int widens
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(ValueTest, TupleAccess) {
  Value t = VTuple({VInt(1), VDouble(2.0), VBool(false)});
  EXPECT_EQ(t.TupleSize(), 3u);
  EXPECT_EQ(t.At(0).AsInt(), 1);
  EXPECT_EQ(t.At(1).AsDouble(), 2.0);
  EXPECT_FALSE(t.At(2).AsBool());
}

TEST(ValueTest, EqualityIsStructural) {
  Value a = VPair(VIdx2(1, 2), VDouble(3.0));
  Value b = VPair(VIdx2(1, 2), VDouble(3.0));
  Value c = VPair(VIdx2(1, 3), VDouble(3.0));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ValueTest, EqualValuesHashEqually) {
  Value a = VTuple({VInt(7), VDouble(1.5)});
  Value b = VTuple({VInt(7), VDouble(1.5)});
  EXPECT_EQ(a.Hash(), b.Hash());
  // Int and Double with the same numeric value hash equally (they also
  // compare equal), so mixed-kind keys group correctly.
  EXPECT_EQ(VInt(5).Hash(), VDouble(5.0).Hash());
  EXPECT_TRUE(VInt(5).Equals(VDouble(5.0)));
}

TEST(ValueTest, CompareIsTotalOrder) {
  EXPECT_LT(VInt(1).Compare(VInt(2)), 0);
  EXPECT_GT(VInt(2).Compare(VInt(1)), 0);
  EXPECT_EQ(VInt(2).Compare(VInt(2)), 0);
  EXPECT_LT(VIdx2(1, 5).Compare(VIdx2(2, 0)), 0);
  EXPECT_LT(VIdx2(1, 5).Compare(VIdx2(1, 6)), 0);
  // Shorter tuple sorts first on shared prefix.
  EXPECT_LT(VTuple({VInt(1)}).Compare(VTuple({VInt(1), VInt(0)})), 0);
}

TEST(ValueTest, TileValueCopyOnWrite) {
  la::Tile t(2, 2);
  t.Set(0, 0, 1.0);
  Value a = Value::TileVal(std::move(t));
  Value b = a;  // shares the tile
  EXPECT_EQ(&a.AsTile(), &b.AsTile());
  la::Tile* mut = b.MutableTile();
  mut->Set(0, 0, 9.0);
  EXPECT_EQ(a.AsTile().At(0, 0), 1.0);  // original untouched
  EXPECT_EQ(b.AsTile().At(0, 0), 9.0);
}

TEST(ValueTest, MutableTileWithoutSharingDoesNotCopy) {
  Value a = Value::TileVal(la::Tile(2, 2));
  const la::Tile* before = &a.AsTile();
  EXPECT_EQ(a.MutableTile(), before);
}

TEST(ValueTest, SerializeRoundTripScalarsAndNesting) {
  Rng rng(77);
  la::Tile t(3, 4);
  t.FillRandom(&rng, 0.0, 10.0);
  Value v = VTuple({VIdx2(5, 9), Value::TileVal(std::move(t)),
                    Value::List({VInt(1), VDouble(2.5), Value::Str("x"),
                                 Value::Unit(), VBool(true)})});
  ByteWriter w;
  v.Serialize(&w);
  EXPECT_EQ(w.size(), v.SerializedSize());
  ByteReader r(w.buffer());
  auto back = Value::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().Equals(v));
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0xFF, 0x01, 0x02};
  ByteReader r(junk.data(), junk.size());
  EXPECT_FALSE(Value::Deserialize(&r).ok());
}

TEST(ValueTest, DeserializeRejectsCorruptTileHeader) {
  ByteWriter w;
  w.PutU8(7);             // tile tag
  w.PutI64(1'000'000);    // rows
  w.PutI64(1'000'000);    // cols -- far more than remaining bytes
  ByteReader r(w.buffer());
  EXPECT_FALSE(Value::Deserialize(&r).ok());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(VInt(3).ToString(), "3");
  EXPECT_EQ(VPair(VInt(1), VBool(false)).ToString(), "(1,false)");
  EXPECT_EQ(Value::List({VInt(1), VInt(2)}).ToString(), "[1,2]");
  EXPECT_EQ(Value::Unit().ToString(), "()");
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(VDouble(-0.0).Hash(), VDouble(0.0).Hash());
  EXPECT_TRUE(VDouble(-0.0).Equals(VDouble(0.0)));
}

}  // namespace
}  // namespace sac::runtime
