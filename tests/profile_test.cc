#include "src/common/profile.h"

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/runtime/engine.h"

namespace sac {
namespace {

using profile::BuildProfile;
using profile::DiffProfiles;
using profile::DiffResult;
using profile::DiffThresholds;
using profile::IsRegression;
using profile::ParseProfile;
using profile::Profile;
using profile::ProfileInputs;
using trace::SpanRecord;

SpanRecord Span(uint64_t id, uint64_t parent, const std::string& name,
                const std::string& category, uint64_t start_us,
                uint64_t dur_us) {
  SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.name = name;
  s.category = category;
  s.start_us = start_us;
  s.dur_us = dur_us;
  return s;
}

/// Synthetic trace: three sequential-ish roots with tasks underneath.
///   "load"  stage   [0, 100)  tasks [10,40) and [20,60)   (overlap!)
///   "join"  stage   [100, 300) task  [120,170), stage arg id=7
///   "collect:join" action [250, 340) -- overlaps "join" by 50us
/// plus a counter sample and an instant marker that must not become
/// stages.
ProfileInputs SyntheticInputs() {
  ProfileInputs in;
  in.spans.push_back(Span(1, 0, "load", "stage", 0, 100));
  in.spans.push_back(Span(2, 1, "load:task[0]", "task", 10, 30));
  in.spans.push_back(Span(3, 1, "load:task[1]", "task", 20, 40));
  SpanRecord join = Span(4, 0, "join", "stage", 100, 200);
  join.args.push_back({"stage", 7});
  in.spans.push_back(join);
  in.spans.push_back(Span(5, 4, "join:shuffle-write[0]", "task", 120, 50));
  in.spans.push_back(Span(6, 0, "collect:join", "action", 250, 90));
  SpanRecord sample = Span(7, 0, "engine", "counter", 5, 0);
  sample.counter = true;
  sample.args.push_back({"resident_bytes", 123});
  in.spans.push_back(sample);
  SpanRecord marker = Span(8, 0, "evict", "memory", 30, 0);
  marker.instant = true;
  in.spans.push_back(marker);

  StageStatsSnapshot ss;
  ss.id = 7;
  ss.label = "join";
  ss.kind = "shuffle";
  ss.counters.shuffle_bytes = 4096;
  ss.counters.shuffle_records = 16;
  in.stage_stats.push_back(ss);

  in.totals.tasks_run = 3;
  in.totals.shuffle_bytes = 4096;
  in.dropped_trace_events = 9;
  in.query = "unit:synthetic";
  return in;
}

TEST(ProfileBuildTest, StageTreeSelfTimeAndPhases) {
  Profile p = BuildProfile(SyntheticInputs());

  EXPECT_EQ(p.version, profile::kProfileVersion);
  EXPECT_EQ(p.query, "unit:synthetic");
  EXPECT_EQ(p.dropped_trace_events, 9u);
  EXPECT_EQ(p.totals.tasks_run, 3u);
  // Extent: first start 0 .. last end 340 (counter/instant spans carry
  // no duration and don't extend it).
  EXPECT_NEAR(p.trace_extent_ms, 0.34, 1e-9);
  EXPECT_NEAR(p.wall_ms, 0.34, 1e-9);  // hint 0 -> extent

  // Stages by total_us desc: join(200), load(100), collect:join(90).
  // The instant marker and the counter sample must not appear.
  ASSERT_EQ(p.stages.size(), 3u);
  EXPECT_EQ(p.stages[0].name, "join");
  EXPECT_EQ(p.stages[1].name, "load");
  EXPECT_EQ(p.stages[2].name, "collect:join");
  EXPECT_EQ(p.stages[2].category, "action");

  const profile::StageProfile& join = p.stages[0];
  EXPECT_EQ(join.total_us, 200u);
  EXPECT_EQ(join.task_time_us, 50u);
  EXPECT_EQ(join.self_us, 150u);  // 200 - one 50us task
  EXPECT_EQ(join.stage_id, 7);    // from the span arg
  ASSERT_EQ(join.phases.size(), 1u);
  EXPECT_EQ(join.phases[0].phase, "shuffle-write");
  EXPECT_EQ(join.phases[0].task_count, 1u);
  EXPECT_EQ(join.phases[0].busy_us, 50u);
  EXPECT_EQ(join.phases[0].longest_task_us, 50u);

  const profile::StageProfile& load = p.stages[1];
  EXPECT_EQ(load.total_us, 100u);
  EXPECT_EQ(load.task_time_us, 70u);  // 30 + 40
  // Self time subtracts the UNION of child intervals [10,60), not their
  // sum: 100 - 50.
  EXPECT_EQ(load.self_us, 50u);
  ASSERT_EQ(load.phases.size(), 1u);
  EXPECT_EQ(load.phases[0].phase, "task");
  EXPECT_EQ(load.phases[0].task_count, 2u);
  EXPECT_EQ(load.phases[0].busy_us, 50u);
  EXPECT_EQ(load.phases[0].longest_task_us, 40u);

  // Counter join by label: only "join" has registry stats.
  EXPECT_TRUE(join.has_counters);
  EXPECT_EQ(join.counters.shuffle_bytes, 4096u);
  EXPECT_EQ(join.counters.shuffle_records, 16u);
  EXPECT_FALSE(load.has_counters);

  // Sampler series rides along.
  ASSERT_EQ(p.samples.size(), 1u);
  EXPECT_EQ(p.samples[0].t_us, 5u);
  ASSERT_EQ(p.samples[0].values.size(), 1u);
  EXPECT_EQ(p.samples[0].values[0].key, "resident_bytes");
  EXPECT_EQ(p.samples[0].values[0].value, 123);
}

TEST(ProfileBuildTest, CriticalPathIsExclusiveFirstArrival) {
  Profile p = BuildProfile(SyntheticInputs());

  // Sweep: load [0,100) credits 100; join [100,300) credits 200;
  // collect:join [250,340) starts inside join, credits only [300,340).
  ASSERT_EQ(p.stages.size(), 3u);
  EXPECT_EQ(p.stages[0].exclusive_us, 200u);  // join
  EXPECT_EQ(p.stages[1].exclusive_us, 100u);  // load
  EXPECT_EQ(p.stages[2].exclusive_us, 40u);   // collect:join, clipped

  // Critical path: indices into stages, exclusive_us desc. Exclusive
  // credits sum to the extent, so coverage is exactly 100%.
  ASSERT_EQ(p.critical_path.size(), 3u);
  EXPECT_EQ(p.stages[p.critical_path[0]].name, "join");
  EXPECT_EQ(p.stages[p.critical_path[1]].name, "load");
  EXPECT_EQ(p.stages[p.critical_path[2]].name, "collect:join");
  EXPECT_NEAR(p.coverage_pct, 100.0, 1e-6);
  EXPECT_NEAR(p.stages[0].wall_pct, 200.0 / 340.0 * 100.0, 1e-6);
}

TEST(ProfileBuildTest, WallHintScalesCoverage) {
  ProfileInputs in = SyntheticInputs();
  in.wall_ms_hint = 0.68;  // exactly 2x the trace extent
  Profile p = BuildProfile(std::move(in));
  EXPECT_NEAR(p.wall_ms, 0.68, 1e-9);
  EXPECT_NEAR(p.trace_extent_ms, 0.34, 1e-9);
  EXPECT_NEAR(p.coverage_pct, 50.0, 1e-6);
}

TEST(ProfileJsonTest, ToJsonParseProfileRoundTrips) {
  Profile p = BuildProfile(SyntheticInputs());
  const std::string text = p.ToJson();

  Result<Profile> back = ParseProfile(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Profile& q = back.value();

  EXPECT_EQ(q.version, p.version);
  EXPECT_EQ(q.query, p.query);
  EXPECT_NEAR(q.wall_ms, p.wall_ms, 1e-3);
  EXPECT_NEAR(q.coverage_pct, p.coverage_pct, 1e-2);
  EXPECT_EQ(q.dropped_trace_events, 9u);
  EXPECT_EQ(q.totals.tasks_run, 3u);

  ASSERT_EQ(q.stages.size(), p.stages.size());
  for (size_t i = 0; i < p.stages.size(); ++i) {
    EXPECT_EQ(q.stages[i].name, p.stages[i].name);
    EXPECT_EQ(q.stages[i].category, p.stages[i].category);
    EXPECT_EQ(q.stages[i].total_us, p.stages[i].total_us);
    EXPECT_EQ(q.stages[i].self_us, p.stages[i].self_us);
    EXPECT_EQ(q.stages[i].exclusive_us, p.stages[i].exclusive_us);
    EXPECT_EQ(q.stages[i].has_counters, p.stages[i].has_counters);
    ASSERT_EQ(q.stages[i].phases.size(), p.stages[i].phases.size());
    for (size_t j = 0; j < p.stages[i].phases.size(); ++j) {
      EXPECT_EQ(q.stages[i].phases[j].phase, p.stages[i].phases[j].phase);
      EXPECT_EQ(q.stages[i].phases[j].busy_us, p.stages[i].phases[j].busy_us);
    }
  }
  EXPECT_EQ(q.stages[0].counters.shuffle_bytes, 4096u);

  ASSERT_EQ(q.critical_path.size(), p.critical_path.size());
  for (size_t i = 0; i < p.critical_path.size(); ++i) {
    EXPECT_EQ(q.stages[q.critical_path[i]].name,
              p.stages[p.critical_path[i]].name);
  }

  ASSERT_EQ(q.samples.size(), 1u);
  EXPECT_EQ(q.samples[0].t_us, 5u);
  ASSERT_EQ(q.samples[0].values.size(), 1u);
  EXPECT_EQ(q.samples[0].values[0].key, "resident_bytes");
  EXPECT_EQ(q.samples[0].values[0].value, 123);
}

TEST(ProfileJsonTest, ParseRejectsNonProfilesAndFutureVersions) {
  EXPECT_FALSE(ParseProfile("not json").ok());
  EXPECT_FALSE(ParseProfile("{\"rows\":[]}").ok());  // a bench report
  EXPECT_FALSE(
      ParseProfile("{\"profile_version\":999,\"stages\":[]}").ok());
}

TEST(ProfileDiffTest, IsRegressionNeedsBothBars) {
  // Relative 25%, absolute floor 5.
  EXPECT_FALSE(IsRegression(100, 100, 25, 5));  // identical
  EXPECT_FALSE(IsRegression(100, 90, 25, 5));   // improvement
  EXPECT_FALSE(IsRegression(100, 104, 25, 5));  // below absolute floor
  EXPECT_FALSE(IsRegression(100, 110, 25, 5));  // below relative bar
  EXPECT_TRUE(IsRegression(100, 130, 25, 5));   // clears both
  EXPECT_TRUE(IsRegression(0, 10, 25, 5));      // new cost from zero
  EXPECT_FALSE(IsRegression(0, 3, 25, 5));      // zero-base wobble
}

TEST(ProfileDiffTest, SelfDiffHasZeroRegressions) {
  Profile p = BuildProfile(SyntheticInputs());
  DiffResult d = DiffProfiles(p, p);
  EXPECT_EQ(d.regressions, 0);
  ASSERT_FALSE(d.entries.empty());
  for (const profile::DiffEntry& e : d.entries) {
    EXPECT_FALSE(e.regression) << e.metric;
    EXPECT_EQ(e.delta_pct, 0) << e.metric;
  }
  EXPECT_NE(d.ToString().find("no regressions"), std::string::npos);
}

TEST(ProfileDiffTest, InflationTripsWallAndShuffleGates) {
  Profile base;
  base.wall_ms = 100;
  base.totals.shuffle_bytes = 1 << 20;
  base.totals.tasks_run = 64;
  Profile cur = base;
  cur.wall_ms = 200;                       // +100ms, +100%
  cur.totals.shuffle_bytes = 4u << 20;     // +3MiB, +300%
  DiffResult d = DiffProfiles(base, cur);
  EXPECT_GE(d.regressions, 2);
  bool wall = false, bytes = false;
  for (const profile::DiffEntry& e : d.entries) {
    if (e.metric == "wall_ms") wall = e.regression;
    if (e.metric == "shuffle_bytes_total") bytes = e.regression;
  }
  EXPECT_TRUE(wall);
  EXPECT_TRUE(bytes);
  EXPECT_NE(d.ToString().find("REGRESSION"), std::string::npos);

  // The improvement direction stays quiet.
  EXPECT_EQ(DiffProfiles(cur, base).regressions, 0);
}

TEST(ProfileJsonParserTest, ParsesObjectsArraysEscapesNumbers) {
  json::Value v;
  Status s = json::Parse(
      "{\"a\":[1,2.5,-3],\"s\":\"x\\\"y\\nz\",\"b\":true,"
      "\"n\":null,\"o\":{\"k\":\"v\"},\"big\":18446744073709551615}",
      &v);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.At("a").is_array());
  ASSERT_EQ(v.At("a").array.size(), 3u);
  EXPECT_EQ(v.At("a").array[0].Int(), 1);
  EXPECT_NEAR(v.At("a").array[1].Num(), 2.5, 1e-12);
  EXPECT_EQ(v.At("a").array[2].Int(), -3);
  EXPECT_EQ(v.At("s").str, "x\"y\nz");
  EXPECT_TRUE(v.At("b").boolean);
  EXPECT_TRUE(v.At("n").is_null());
  EXPECT_EQ(v.At("o").GetStr("k"), "v");
  // Typed lookups default on missing keys and chain null-safely.
  EXPECT_EQ(v.GetNum("missing", 7.5), 7.5);
  EXPECT_EQ(v.At("o").At("nope").At("deeper").Int(), 0);
  EXPECT_FALSE(v.Has("missing"));
}

TEST(ProfileJsonParserTest, RejectsMalformedInput) {
  json::Value v;
  EXPECT_FALSE(json::Parse("", &v).ok());
  EXPECT_FALSE(json::Parse("{", &v).ok());
  EXPECT_FALSE(json::Parse("{\"a\":}", &v).ok());
  EXPECT_FALSE(json::Parse("[1,]", &v).ok());
  EXPECT_FALSE(json::Parse("tru", &v).ok());
  EXPECT_FALSE(json::Parse("\"unterminated", &v).ok());
  EXPECT_FALSE(json::Parse("{} trailing", &v).ok());
  // Errors carry the byte offset they were detected at.
  Status s = json::Parse("{\"a\":!}", &v);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------
// Engine integration: sampler thread, SAC_TRACE teardown, WriteProfile.
// ---------------------------------------------------------------------

runtime::ValueVec Ints(int n) {
  runtime::ValueVec out;
  for (int i = 0; i < n; ++i) out.push_back(runtime::VInt(i));
  return out;
}

TEST(EngineSamplerTest, BackgroundSamplerEmitsCounterEvents) {
  runtime::ClusterConfig cfg{2, 2, 4};
  cfg.sample_interval_us = 200;
  runtime::Engine eng(cfg);
  runtime::Dataset ds = eng.Parallelize(Ints(64), 4);
  ASSERT_TRUE(eng.Collect(ds).ok());

  // The sampler runs on its own thread; wait (bounded) for a sample.
  bool saw = false;
  for (int i = 0; i < 500 && !saw; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    for (const trace::SpanRecord& s : eng.tracer().Snapshot()) {
      if (!s.counter || s.name != "engine") continue;
      saw = true;
      bool resident = false, in_flight = false;
      for (const trace::SpanArg& a : s.args) {
        if (a.key == "resident_bytes") resident = true;
        if (a.key == "in_flight_tasks") in_flight = true;
      }
      EXPECT_TRUE(resident);
      EXPECT_TRUE(in_flight);
      break;
    }
  }
  EXPECT_TRUE(saw) << "no counter sample within 1s at a 200us interval";
}

TEST(EngineSamplerTest, SamplerShutdownJoinsCleanly) {
  // Construction/destruction races between the sampler thread and
  // teardown would hang or crash here (also exercised under TSan).
  runtime::ClusterConfig cfg{2, 1, 2};
  cfg.sample_interval_us = 100;
  for (int i = 0; i < 3; ++i) {
    runtime::Engine eng(cfg);
  }
  // Off by default: no sampler thread, no counter events.
  runtime::Engine off(runtime::ClusterConfig{2, 1, 2});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (const trace::SpanRecord& s : off.tracer().Snapshot()) {
    EXPECT_FALSE(s.counter);
  }
}

TEST(EngineProfileTest, SacTraceEnvWritesChromeTraceAtTeardown) {
  const std::string path =
      ::testing::TempDir() + "/sac_trace_teardown_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("SAC_TRACE", path.c_str(), 1), 0);
  {
    runtime::Engine eng(runtime::ClusterConfig{2, 2, 4});
    runtime::Dataset ds = eng.Parallelize(Ints(16), 2);
    ASSERT_TRUE(eng.Collect(ds).ok());
  }
  ASSERT_EQ(unsetenv("SAC_TRACE"), 0);

  // Later engines get "<path>.N", the first gets the path verbatim; this
  // test owns the env var, so its single engine may land on either
  // depending on what ran before it in this process.
  std::ifstream f(path);
  std::string found = path;
  if (!f.is_open()) {
    for (int i = 1; i < 64 && !f.is_open(); ++i) {
      found = path + "." + std::to_string(i);
      f.open(found);
    }
  }
  ASSERT_TRUE(f.is_open()) << "no Chrome trace written for SAC_TRACE";
  std::stringstream buf;
  buf << f.rdbuf();
  json::Value doc;
  Status s = json::Parse(buf.str(), &doc);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(doc.At("traceEvents").is_array());
  EXPECT_FALSE(doc.At("traceEvents").array.empty());
  std::remove(found.c_str());
}

TEST(EngineProfileTest, WriteProfileRoundTripsWithCriticalPath) {
  runtime::ClusterConfig cfg{2, 2, 4};
  runtime::Engine eng(cfg);
  runtime::Dataset ds = eng.Parallelize(Ints(256), 4);
  auto mapped = eng.Map(ds, [](const runtime::Value& v) {
    return runtime::VInt(v.AsInt() * 2);
  });
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(eng.Collect(mapped.value()).ok());

  const std::string path = ::testing::TempDir() + "/unit_profile.json";
  ASSERT_TRUE(eng.WriteProfile(path, /*wall_ms_hint=*/0, "unit:engine").ok());

  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream buf;
  buf << f.rdbuf();
  Result<Profile> p = ParseProfile(buf.str());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().version, profile::kProfileVersion);
  EXPECT_EQ(p.value().query, "unit:engine");
  EXPECT_FALSE(p.value().stages.empty());
  EXPECT_FALSE(p.value().critical_path.empty());
  EXPECT_GT(p.value().wall_ms, 0);
  // Self-diff of a real profile is clean, like sac_prof diff in check.sh.
  EXPECT_EQ(DiffProfiles(p.value(), p.value()).regressions, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sac
