// End-to-end tests of the block-array translation rules (Sections 4-5):
// every strategy is exercised through the public API and validated against
// the reference evaluator (the oracle) on the same inputs.
#include <cmath>

#include <gtest/gtest.h>

#include "src/api/sac.h"

namespace sac {
namespace {

using planner::Strategy;
using runtime::Value;

constexpr double kTol = 1e-9;

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : ctx_(runtime::ClusterConfig{2, 2, 4}) {}

  /// Asserts that `src` compiles with `want` strategy, runs, and that the
  /// produced matrix equals the reference evaluation.
  void CheckMatrixQuery(const std::string& src, Strategy want) {
    auto q = ctx_.Compile(src);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value().strategy, want)
        << "plan: " << q.value().explanation;
    auto r = ctx_.EvalTiled(src);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto local = ctx_.ToLocal(r.value());
    ASSERT_TRUE(local.ok());
    auto ref = ctx_.ReferenceEval(src);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_TRUE(ref.value().is_tile());
    const la::Tile& expect = ref.value().AsTile();
    const la::Tile& got = local.value();
    ASSERT_EQ(got.rows(), expect.rows());
    ASSERT_EQ(got.cols(), expect.cols());
    for (int64_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got.data()[i], expect.data()[i], kTol)
          << "cell " << i << " of " << src;
    }
  }

  void CheckVectorQuery(const std::string& src, Strategy want) {
    auto q = ctx_.Compile(src);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value().strategy, want)
        << "plan: " << q.value().explanation;
    auto r = ctx_.EvalVector(src);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto local = ctx_.ToLocal(r.value());
    ASSERT_TRUE(local.ok());
    auto ref = ctx_.ReferenceEval(src);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_TRUE(ref.value().is_list());
    const auto& expect = ref.value().AsList();
    const auto& got = local.value();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], expect[i].At(1).AsDouble(), kTol) << src;
    }
  }

  Sac ctx_;
};

// ---- 5.1 tiling-preserving -------------------------------------------------

TEST_F(PlannerTest, MatrixAdditionPreservesTiling) {
  ctx_.Bind("A", ctx_.RandomMatrix(30, 22, 8, 1).value());
  ctx_.Bind("B", ctx_.RandomMatrix(30, 22, 8, 2).value());
  ctx_.BindScalar("n", int64_t{30});
  ctx_.BindScalar("m", int64_t{22});
  CheckMatrixQuery(
      "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]",
      Strategy::kTilingPreserving);
}

TEST_F(PlannerTest, ElementwiseExpressionWithScalars) {
  ctx_.Bind("A", ctx_.RandomMatrix(17, 17, 8, 3).value());
  ctx_.Bind("B", ctx_.RandomMatrix(17, 17, 8, 4).value());
  ctx_.BindScalar("n", int64_t{17});
  ctx_.BindScalar("gamma", 0.5);
  CheckMatrixQuery(
      "tiled(n,n)[ ((i,j), a + gamma*(2.0*b - a)) | ((i,j),a) <- A,"
      " ((ii,jj),b) <- B, ii == i, jj == j ]",
      Strategy::kTilingPreserving);
}

TEST_F(PlannerTest, MatrixSubtraction) {
  ctx_.Bind("A", ctx_.RandomMatrix(16, 16, 8, 5).value());
  ctx_.Bind("B", ctx_.RandomMatrix(16, 16, 8, 6).value());
  ctx_.BindScalar("n", int64_t{16});
  CheckMatrixQuery(
      "tiled(n,n)[ ((i,j),a-b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]",
      Strategy::kTilingPreserving);
}

TEST_F(PlannerTest, TransposePreservesTiling) {
  ctx_.Bind("A", ctx_.RandomMatrix(20, 12, 8, 7).value());
  ctx_.BindScalar("n", int64_t{20});
  ctx_.BindScalar("m", int64_t{12});
  CheckMatrixQuery("tiled(m,n)[ ((j,i),a) | ((i,j),a) <- A ]",
                   Strategy::kTilingPreserving);
}

TEST_F(PlannerTest, ScaleByScalar) {
  ctx_.Bind("A", ctx_.RandomMatrix(16, 16, 8, 8).value());
  ctx_.BindScalar("n", int64_t{16});
  ctx_.BindScalar("c", 2.5);
  CheckMatrixQuery("tiled(n,n)[ ((i,j), c*a) | ((i,j),a) <- A ]",
                   Strategy::kTilingPreserving);
}

TEST_F(PlannerTest, DiagonalExtraction) {
  ctx_.Bind("A", ctx_.RandomMatrix(24, 24, 8, 9).value());
  ctx_.BindScalar("n", int64_t{24});
  CheckVectorQuery("tiled(n)[ (i, a) | ((i,j),a) <- A, i == j ]",
                   Strategy::kTilingPreserving);
}

TEST_F(PlannerTest, VectorElementwise) {
  ctx_.Bind("V", ctx_.RandomVector(40, 8, 10).value());
  ctx_.Bind("W", ctx_.RandomVector(40, 8, 11).value());
  ctx_.BindScalar("n", int64_t{40});
  CheckVectorQuery("tiled(n)[ (i, 3.0*v) | (i,v) <- V ]",
                   Strategy::kTilingPreserving);
  CheckVectorQuery(
      "tiled(n)[ (i, v+w) | (i,v) <- V, (j,w) <- W, j == i ]",
      Strategy::kTilingPreserving);
}

// ---- 5.3 reduce-by-key ------------------------------------------------------

TEST_F(PlannerTest, RowSumsUseReduceByKey) {
  ctx_.Bind("M", ctx_.RandomMatrix(30, 26, 8, 12).value());
  ctx_.BindScalar("n", int64_t{30});
  CheckVectorQuery("tiled(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
                   Strategy::kReduceByKey);
}

TEST_F(PlannerTest, ColumnSums) {
  ctx_.Bind("M", ctx_.RandomMatrix(30, 26, 8, 13).value());
  ctx_.BindScalar("m", int64_t{26});
  CheckVectorQuery("tiled(m)[ (j, +/v) | ((i,j),v) <- M, group by j ]",
                   Strategy::kReduceByKey);
}

TEST_F(PlannerTest, RowMaxima) {
  ctx_.Bind("M", ctx_.RandomMatrix(24, 24, 8, 14).value());
  ctx_.BindScalar("n", int64_t{24});
  CheckVectorQuery("tiled(n)[ (i, max/m) | ((i,j),m) <- M, group by i ]",
                   Strategy::kReduceByKey);
}

TEST_F(PlannerTest, RowAveragesUseTwoAggregates) {
  ctx_.Bind("M", ctx_.RandomMatrix(24, 16, 8, 15).value());
  ctx_.BindScalar("n", int64_t{24});
  CheckVectorQuery("tiled(n)[ (i, avg/m) | ((i,j),m) <- M, group by i ]",
                   Strategy::kReduceByKey);
}

TEST_F(PlannerTest, MatrixMultiplyWithoutGbjUsesReduceByKey) {
  planner::PlannerOptions opts;
  opts.enable_group_by_join = false;
  Sac ctx(runtime::ClusterConfig{2, 2, 4}, opts);
  ctx.Bind("A", ctx.RandomMatrix(24, 18, 6, 16).value());
  ctx.Bind("B", ctx.RandomMatrix(18, 20, 6, 17).value());
  ctx.BindScalar("n", int64_t{24});
  ctx.BindScalar("m", int64_t{20});
  const std::string src =
      "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]";
  auto q = ctx.Compile(src);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().strategy, Strategy::kReduceByKey);
  auto r = ctx.EvalTiled(src);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto local = ctx.ToLocal(r.value()).value();
  auto ref = ctx.ReferenceEval(src).value();
  for (int64_t i = 0; i < local.size(); ++i) {
    ASSERT_NEAR(local.data()[i], ref.AsTile().data()[i], 1e-8);
  }
}

TEST_F(PlannerTest, MatrixVectorProduct) {
  ctx_.Bind("A", ctx_.RandomMatrix(24, 16, 8, 18).value());
  ctx_.Bind("V", ctx_.RandomVector(16, 8, 19).value());
  ctx_.BindScalar("n", int64_t{24});
  CheckVectorQuery(
      "tiled(n)[ (i, +/c) | ((i,k),a) <- A, (kk,v) <- V, kk == k,"
      " let c = a*v, group by i ]",
      Strategy::kReduceByKey);
}

// ---- 5.4 group-by-join (SUMMA) ---------------------------------------------

TEST_F(PlannerTest, MatrixMultiplyUsesGroupByJoin) {
  ctx_.Bind("A", ctx_.RandomMatrix(24, 18, 6, 20).value());
  ctx_.Bind("B", ctx_.RandomMatrix(18, 20, 6, 21).value());
  ctx_.BindScalar("n", int64_t{24});
  ctx_.BindScalar("m", int64_t{20});
  CheckMatrixQuery(
      "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]",
      Strategy::kGroupByJoin);
}

TEST_F(PlannerTest, GroupByJoinHandlesNonSquareGrids) {
  ctx_.Bind("A", ctx_.RandomMatrix(25, 13, 8, 22).value());
  ctx_.Bind("B", ctx_.RandomMatrix(13, 31, 8, 23).value());
  ctx_.BindScalar("n", int64_t{25});
  ctx_.BindScalar("m", int64_t{31});
  CheckMatrixQuery(
      "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]",
      Strategy::kGroupByJoin);
}

TEST_F(PlannerTest, MinPlusSemiringProduct) {
  // The rules are oblivious to linear algebra: a min-plus "multiplication"
  // (shortest paths step) compiles through the same group-by-join rule.
  ctx_.Bind("A", ctx_.RandomMatrix(16, 16, 8, 24).value());
  ctx_.Bind("B", ctx_.RandomMatrix(16, 16, 8, 25).value());
  ctx_.BindScalar("n", int64_t{16});
  CheckMatrixQuery(
      "tiled(n,n)[ ((i,j),min/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a+b, group by (i,j) ]",
      Strategy::kGroupByJoin);
}

TEST_F(PlannerTest, ProductOfTransposedOperand) {
  // E^T x P: the transposed operand appears as ((k,i),e).
  ctx_.Bind("E", ctx_.RandomMatrix(18, 12, 6, 26).value());
  ctx_.Bind("P", ctx_.RandomMatrix(18, 14, 6, 27).value());
  ctx_.BindScalar("m", int64_t{12});
  ctx_.BindScalar("k", int64_t{14});
  CheckMatrixQuery(
      "tiled(m,k)[ ((i,j),+/v) | ((q,i),e) <- E, ((qq,j),p) <- P,"
      " qq == q, let v = e*p, group by (i,j) ]",
      Strategy::kGroupByJoin);
}

// ---- 5.2 replication ---------------------------------------------------------

TEST_F(PlannerTest, RowRotationUsesReplication) {
  ctx_.Bind("X", ctx_.RandomMatrix(24, 16, 8, 28).value());
  ctx_.BindScalar("n", int64_t{24});
  ctx_.BindScalar("m", int64_t{16});
  CheckMatrixQuery(
      "tiled(n,m)[ (((i+1) % n, j), v) | ((i,j),v) <- X ]",
      Strategy::kReplication);
}

TEST_F(PlannerTest, ShiftByOneColumnDropsBoundary) {
  ctx_.Bind("X", ctx_.RandomMatrix(16, 16, 8, 29).value());
  ctx_.BindScalar("n", int64_t{16});
  CheckMatrixQuery(
      "tiled(n,n)[ ((i, j+1), v) | ((i,j),v) <- X, j+1 < n ]",
      Strategy::kReplication);
}

// ---- Section 4 COO ----------------------------------------------------------

TEST_F(PlannerTest, ForcedCooMatchesReference) {
  planner::PlannerOptions opts;
  opts.force_coo = true;
  Sac ctx(runtime::ClusterConfig{2, 2, 4}, opts);
  ctx.Bind("A", ctx.RandomMatrix(12, 12, 4, 30).value());
  ctx.Bind("B", ctx.RandomMatrix(12, 12, 4, 31).value());
  ctx.BindScalar("n", int64_t{12});
  const std::string add =
      "tiled(n,n)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]";
  auto q = ctx.Compile(add);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().strategy, Strategy::kCoo);
  auto local = ctx.ToLocal(ctx.EvalTiled(add).value()).value();
  auto ref = ctx.ReferenceEval(add).value();
  for (int64_t i = 0; i < local.size(); ++i) {
    ASSERT_NEAR(local.data()[i], ref.AsTile().data()[i], kTol);
  }
}

TEST_F(PlannerTest, CooMatrixMultiply) {
  planner::PlannerOptions opts;
  opts.force_coo = true;
  Sac ctx(runtime::ClusterConfig{2, 2, 4}, opts);
  ctx.Bind("A", ctx.RandomMatrix(10, 8, 4, 32).value());
  ctx.Bind("B", ctx.RandomMatrix(8, 12, 4, 33).value());
  ctx.BindScalar("n", int64_t{10});
  ctx.BindScalar("m", int64_t{12});
  const std::string src =
      "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]";
  auto q = ctx.Compile(src);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().strategy, Strategy::kCoo);
  auto local = ctx.ToLocal(ctx.EvalTiled(src).value()).value();
  auto ref = ctx.ReferenceEval(src).value();
  for (int64_t i = 0; i < local.size(); ++i) {
    ASSERT_NEAR(local.data()[i], ref.AsTile().data()[i], 1e-8);
  }
}

// ---- total aggregation -------------------------------------------------------

TEST_F(PlannerTest, TotalSumAndExtrema) {
  ctx_.Bind("A", ctx_.RandomMatrix(20, 20, 8, 34).value());
  auto sum = ctx_.EvalScalar("+/[ v | ((i,j),v) <- A ]");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  auto ref = ctx_.ReferenceEval("+/[ v | ((i,j),v) <- A ]").value();
  EXPECT_NEAR(sum.value(), ref.AsDouble(), 1e-8);

  auto mx = ctx_.EvalScalar("max/[ v | ((i,j),v) <- A ]");
  auto ref_mx = ctx_.ReferenceEval("max/[ v | ((i,j),v) <- A ]").value();
  EXPECT_DOUBLE_EQ(mx.value(), ref_mx.AsDouble());
}

TEST_F(PlannerTest, SquaredErrorNorm) {
  ctx_.Bind("E", ctx_.RandomMatrix(16, 16, 8, 35).value());
  auto v = ctx_.EvalScalar("+/[ e*e | ((i,j),e) <- E ]");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto ref = ctx_.ReferenceEval("+/[ e*e | ((i,j),e) <- E ]").value();
  EXPECT_NEAR(v.value(), ref.AsDouble(), 1e-8);
}

TEST_F(PlannerTest, GuardedCountOverDiagonal) {
  ctx_.Bind("A", ctx_.RandomMatrix(12, 12, 4, 36).value());
  auto v = ctx_.EvalScalar("count/[ v | ((i,j),v) <- A, i == j ]");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value(), 12.0);
}

// ---- local fallback & local queries -----------------------------------------

TEST_F(PlannerTest, SmoothingFallsBackAndMatchesReference) {
  ctx_.Bind("M", ctx_.RandomMatrix(12, 12, 4, 37).value());
  ctx_.BindScalar("n", int64_t{12});
  ctx_.BindScalar("m", int64_t{12});
  // The Section 3 smoothing stencil: not expressible by the tile rules we
  // implement, so the planner must still run it correctly (fallback).
  const std::string src =
      "tiled(n,m)[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- M,"
      " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
      " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]";
  auto q = ctx_.Compile(src);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().strategy, Strategy::kLocalFallback);
  auto local = ctx_.ToLocal(ctx_.EvalTiled(src).value()).value();
  auto ref = ctx_.ReferenceEval(src).value();
  for (int64_t i = 0; i < local.size(); ++i) {
    ASSERT_NEAR(local.data()[i], ref.AsTile().data()[i], kTol);
  }
}

TEST_F(PlannerTest, PurelyLocalQueriesEvaluateLocally) {
  ctx_.BindScalar("n", int64_t{5});
  auto q = ctx_.Compile("+/[ i*i | i <- 0 until n ]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().strategy, Strategy::kLocal);
  auto r = ctx_.Eval("+/[ i*i | i <- 0 until n ]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value.AsInt(), 30);
}

// ---- planner diagnostics ------------------------------------------------------

TEST_F(PlannerTest, UnboundArrayIsAnError) {
  ctx_.BindScalar("n", int64_t{4});
  auto r = ctx_.Eval("tiled(n,n)[ ((i,j),v) | ((i,j),v) <- NOPE ]");
  EXPECT_FALSE(r.ok());
}

TEST_F(PlannerTest, ExplanationMentionsRule) {
  ctx_.Bind("A", ctx_.RandomMatrix(16, 16, 8, 38).value());
  ctx_.Bind("B", ctx_.RandomMatrix(16, 16, 8, 39).value());
  ctx_.BindScalar("n", int64_t{16});
  auto q = ctx_.Compile(
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(q.ok());
  EXPECT_NE(q.value().explanation.find("5.4"), std::string::npos);
}

// ---- shuffle-volume assertions (the paper's causal claims) -------------------

TEST_F(PlannerTest, GbjAndJoinGroupByPlansAgree) {
  // The two multiply translations of Figure 4.B must produce bit-identical
  // linear algebra (up to float summation order).
  const int64_t n = 48, blk = 8;
  planner::PlannerOptions no_gbj;
  no_gbj.enable_group_by_join = false;
  const std::string src =
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]";

  Sac c1(runtime::ClusterConfig{2, 2, 4});
  c1.Bind("A", c1.RandomMatrix(n, n, blk, 40).value());
  c1.Bind("B", c1.RandomMatrix(n, n, blk, 41).value());
  c1.BindScalar("n", n);
  auto q1 = c1.Compile(src);
  ASSERT_TRUE(q1.ok());
  ASSERT_EQ(q1.value().strategy, Strategy::kGroupByJoin);
  auto t1 = c1.ToLocal(c1.EvalTiled(src).value()).value();

  Sac c2(runtime::ClusterConfig{2, 2, 4}, no_gbj);
  c2.Bind("A", c2.RandomMatrix(n, n, blk, 40).value());
  c2.Bind("B", c2.RandomMatrix(n, n, blk, 41).value());
  c2.BindScalar("n", n);
  auto q2 = c2.Compile(src);
  ASSERT_TRUE(q2.ok());
  ASSERT_EQ(q2.value().strategy, Strategy::kReduceByKey);
  auto t2 = c2.ToLocal(c2.EvalTiled(src).value()).value();

  ASSERT_EQ(t1.rows(), t2.rows());
  for (int64_t i = 0; i < t1.size(); ++i) {
    ASSERT_NEAR(t1.data()[i], t2.data()[i], 1e-8);
  }
}

TEST_F(PlannerTest, TilingPreservingAdditionAvoidsElementShuffle) {
  const int64_t n = 32, blk = 8;
  const std::string src =
      "tiled(n,n)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]";
  Sac tiled_ctx(runtime::ClusterConfig{2, 2, 4});
  tiled_ctx.Bind("A", tiled_ctx.RandomMatrix(n, n, blk, 42).value());
  tiled_ctx.Bind("B", tiled_ctx.RandomMatrix(n, n, blk, 43).value());
  tiled_ctx.BindScalar("n", n);
  tiled_ctx.metrics().Reset();
  ASSERT_TRUE(tiled_ctx.EvalTiled(src).ok());
  const uint64_t tiled_bytes = tiled_ctx.metrics().shuffle_bytes();

  planner::PlannerOptions coo;
  coo.force_coo = true;
  Sac coo_ctx(runtime::ClusterConfig{2, 2, 4}, coo);
  coo_ctx.Bind("A", coo_ctx.RandomMatrix(n, n, blk, 42).value());
  coo_ctx.Bind("B", coo_ctx.RandomMatrix(n, n, blk, 43).value());
  coo_ctx.BindScalar("n", n);
  coo_ctx.metrics().Reset();
  ASSERT_TRUE(coo_ctx.EvalTiled(src).ok());
  const uint64_t coo_bytes = coo_ctx.metrics().shuffle_bytes();

  // COO shuffles per-element records (index + value); tiles shuffle far
  // fewer, larger records. The paper's Section 4-vs-5 claim.
  EXPECT_LT(tiled_bytes * 2, coo_bytes);
}

}  // namespace
}  // namespace sac
