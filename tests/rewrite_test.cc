// Tests for the paper's source-to-source rules (Sections 2-3), including
// the meaning-preservation property: a normalized program evaluates to
// the same value as the original.
#include "src/comp/rewrite.h"

#include <gtest/gtest.h>

#include "src/comp/eval.h"
#include "src/comp/parser.h"

namespace sac::comp {
namespace {

using runtime::Value;
using runtime::ValueVec;
using runtime::VDouble;
using runtime::VInt;
using runtime::VPair;

ExprPtr MustParse(const std::string& src) {
  auto r = Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

bool NoArrays(const std::string&) { return false; }
bool AllArrays(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

TEST(RewriteTest, GroupByKeySugarDesugars) {
  ExprPtr e = MustParse("[ (k, +/i) | i <- 0 until 9, group by k : i % 3 ]");
  ExprPtr d = DesugarGroupByKeys(e);
  ASSERT_EQ(d->quals.size(), 3u);
  EXPECT_EQ(d->quals[1].kind, Qualifier::Kind::kLet);
  EXPECT_EQ(d->quals[2].kind, Qualifier::Kind::kGroupBy);
  EXPECT_EQ(d->quals[2].expr, nullptr);
  // Desugaring is idempotent.
  EXPECT_TRUE(DesugarGroupByKeys(d)->Equals(*d));
}

TEST(RewriteTest, IndexingBecomesGeneratorAndGuards) {
  // Section 2: a + N[i,j] adds ((k1,k2),k0) <- N, k1==i, k2==j.
  ExprPtr e = MustParse("[ ((i,j), a + N[i,j]) | ((i,j),a) <- M ]");
  int counter = 0;
  auto d = DesugarIndexing(e, AllArrays, &counter);
  ASSERT_TRUE(d.ok());
  const ExprPtr& out = d.value();
  ASSERT_EQ(out->quals.size(), 4u);  // gen M, gen N, 2 guards
  EXPECT_EQ(out->quals[1].kind, Qualifier::Kind::kGenerator);
  EXPECT_EQ(out->quals[1].expr->str_val, "N");
  EXPECT_EQ(out->quals[2].kind, Qualifier::Kind::kGuard);
  // The head no longer contains an Index node.
  EXPECT_EQ(out->children[0]->ToString().find('['), std::string::npos);
}

TEST(RewriteTest, IndexingOnNonArraysUntouched) {
  ExprPtr e = MustParse("[ (i, V[i]) | i <- 0 until 4 ]");
  int counter = 0;
  auto d = DesugarIndexing(e, NoArrays, &counter);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value()->Equals(*e));
}

TEST(RewriteTest, IndexingDesugarPreservesMeaning) {
  // Evaluate with V bound to an association list: indexing and the
  // generator+guard form must agree.
  Evaluator ev;
  ev.Bind("V", Value::List({VPair(VInt(0), VDouble(10)),
                            VPair(VInt(1), VDouble(20)),
                            VPair(VInt(2), VDouble(30))}));
  ExprPtr e = MustParse("[ (i, V[i] + 1.0) | i <- 0 until 3 ]");
  int counter = 0;
  ExprPtr d = DesugarIndexing(e, AllArrays, &counter).value();
  Value v1 = ev.Eval(e).value();
  Value v2 = ev.Eval(d).value();
  EXPECT_TRUE(v1.Equals(v2)) << v1.ToString() << " vs " << v2.ToString();
}

TEST(RewriteTest, FlattenNestedSplicesQualifiers) {
  // Rule (3).
  ExprPtr e = MustParse("[ y | x <- [ i * 2 | i <- 0 until 3 ], let y = x ]");
  int counter = 0;
  ExprPtr flat = FlattenNested(e, &counter);
  // No generator over a comprehension remains.
  for (const Qualifier& q : flat->quals) {
    if (q.kind == Qualifier::Kind::kGenerator) {
      EXPECT_NE(q.expr->kind, Expr::Kind::kComprehension);
    }
  }
  Evaluator ev;
  EXPECT_TRUE(ev.Eval(e).value().Equals(ev.Eval(flat).value()));
}

TEST(RewriteTest, FlattenAvoidsVariableCapture) {
  // The inner comprehension binds `i`, which also exists outside.
  ExprPtr e = MustParse(
      "[ (i, x) | i <- 0 until 2, x <- [ i * 10 | i <- 0 until 2 ] ]");
  int counter = 0;
  ExprPtr flat = FlattenNested(e, &counter);
  Evaluator ev;
  Value v1 = ev.Eval(e).value();
  Value v2 = ev.Eval(flat).value();
  EXPECT_TRUE(v1.Equals(v2)) << v1.ToString() << " vs " << v2.ToString();
}

TEST(RewriteTest, FlattenLeavesGroupByComprehensionsAlone) {
  ExprPtr e = MustParse(
      "[ s | s <- [ (k, +/i) | i <- 0 until 4, group by k : i % 2 ] ]");
  int counter = 0;
  ExprPtr flat = FlattenNested(e, &counter);
  // The inner group-by comprehension must not be spliced.
  ASSERT_EQ(flat->quals.size(), 1u);
  EXPECT_EQ(flat->quals[0].expr->kind, Expr::Kind::kComprehension);
}

TEST(RewriteTest, MergeEqualRangesFusesGenerators) {
  // Section 2: kk <- 0 until n with kk == k becomes a let plus bounds.
  ExprPtr e = MustParse(
      "[ (k, kk) | k <- 0 until 5, kk <- 0 until 5, kk == k ]");
  ExprPtr merged = MergeEqualRanges(e);
  int gens = 0;
  for (const Qualifier& q : merged->quals) {
    if (q.kind == Qualifier::Kind::kGenerator) ++gens;
  }
  EXPECT_EQ(gens, 1);
  Evaluator ev;
  EXPECT_TRUE(ev.Eval(e).value().Equals(ev.Eval(merged).value()));
}

TEST(RewriteTest, MergeKeepsBoundsGuards) {
  // The merged variable must still respect the original range bounds.
  ExprPtr e = MustParse(
      "[ j | i <- 0 until 10, j <- 0 until 3, j == i ]");
  ExprPtr merged = MergeEqualRanges(e);
  Evaluator ev;
  Value v1 = ev.Eval(e).value();
  Value v2 = ev.Eval(merged).value();
  ASSERT_TRUE(v1.Equals(v2)) << v2.ToString();
  EXPECT_EQ(v1.AsList().size(), 3u);
}

TEST(RewriteTest, MergeSkipsWhenGuardUsesLaterBinding) {
  // i == y where y is bound after the range: must not merge.
  ExprPtr e = MustParse(
      "[ i | i <- 0 until 5, let y = 2, i == y ]");
  ExprPtr merged = MergeEqualRanges(e);
  Evaluator ev;
  EXPECT_TRUE(ev.Eval(e).value().Equals(ev.Eval(merged).value()));
}

TEST(RewriteTest, MergeAtGuardPositionWhenVarBoundLater) {
  // `other` (x) is bound by a generator AFTER the range, so the let must
  // land at the guard's position -- sound because k is unused in between.
  ExprPtr e = MustParse(
      "[ (k, x) | k <- 0 until 10, (i, x) <- V, i == k ]");
  ExprPtr merged = MergeEqualRanges(e);
  int gens = 0;
  for (const Qualifier& q : merged->quals) {
    if (q.kind == Qualifier::Kind::kGenerator) ++gens;
  }
  EXPECT_EQ(gens, 1);  // the range generator is gone
  Evaluator ev;
  ev.Bind("V", Value::List({VPair(VInt(2), VDouble(20)),
                            VPair(VInt(15), VDouble(150))}));
  Value v1 = ev.Eval(e).value();
  Value v2 = ev.Eval(merged).value();
  EXPECT_TRUE(v1.Equals(v2)) << v2.ToString();
  // Only i=2 is inside [0,10).
  EXPECT_EQ(v1.AsList().size(), 1u);
}

TEST(RewriteTest, CopyPropagationRemovesAliases) {
  ExprPtr e = MustParse(
      "[ (v, w) | (i, x) <- V, let v = i, let w = x, w > 1.0 ]");
  ExprPtr out = CopyPropagateLets(e);
  for (const Qualifier& q : out->quals) {
    EXPECT_NE(q.kind, Qualifier::Kind::kLet);
  }
  Evaluator ev;
  ev.Bind("V", Value::List({VPair(VInt(0), VDouble(2)),
                            VPair(VInt(1), VDouble(0.5))}));
  EXPECT_TRUE(ev.Eval(e).value().Equals(ev.Eval(out).value()));
}

TEST(RewriteTest, CopyPropagationRenamesGroupByPatterns) {
  ExprPtr e = MustParse(
      "[ (v, +/x) | (i, x) <- V, let v = i, group by v ]");
  ExprPtr out = CopyPropagateLets(e);
  // The group-by key variable is now the generator index.
  const Qualifier& gb = out->quals.back();
  ASSERT_EQ(gb.kind, Qualifier::Kind::kGroupBy);
  EXPECT_EQ(gb.pattern->ToString(), "i");
  Evaluator ev;
  ev.Bind("V", Value::List({VPair(VInt(0), VDouble(2)),
                            VPair(VInt(0), VDouble(3)),
                            VPair(VInt(1), VDouble(4))}));
  EXPECT_TRUE(ev.Eval(e).value().Equals(ev.Eval(out).value()));
}

TEST(RewriteTest, CopyPropagationSkipsNonVariableLets) {
  ExprPtr e = MustParse("[ v | (i, x) <- V, let v = x * 2.0 ]");
  EXPECT_TRUE(CopyPropagateLets(e)->Equals(*e));
}

class NormalizePreservesMeaning
    : public ::testing::TestWithParam<const char*> {};

TEST_P(NormalizePreservesMeaning, Property) {
  // Normalization (desugar + flatten to fixpoint) must not change the
  // value of any program.
  Evaluator ev;
  ev.Bind("V", Value::List({VPair(VInt(0), VDouble(5)),
                            VPair(VInt(1), VDouble(7)),
                            VPair(VInt(2), VDouble(2))}));
  ExprPtr e = MustParse(GetParam());
  auto norm = Normalize(e, NoArrays);
  ASSERT_TRUE(norm.ok()) << norm.status().ToString();
  auto v1 = ev.Eval(e);
  auto v2 = ev.Eval(norm.value());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_TRUE(v1.value().Equals(v2.value()))
      << GetParam() << ": " << v1.value().ToString() << " vs "
      << v2.value().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, NormalizePreservesMeaning,
    ::testing::Values(
        "[ i + j | i <- 0 until 4, j <- 0 until 3, i < j ]",
        "[ (k, +/i) | i <- 0 until 10, group by k : i % 4 ]",
        "[ y | x <- [ i * i | i <- 0 until 5 ], let y = x + 1 ]",
        "+/[ v | (i,v) <- V ]",
        "[ (i, v) | (i,v) <- V, v > 3.0 ]",
        "max/[ x | x <- [ v * 2.0 | (i,v) <- V ] ]",
        "[ (d, count/v) | (d,v) <- V, group by d ]",
        "&&/[ v < 100.0 | (i,v) <- V ]"));

}  // namespace
}  // namespace sac::comp
