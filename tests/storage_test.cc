// Tests for the block-array storages and their sparsifier/builder pair
// (the type-mapping machinery of Section 1.1).
#include "src/storage/tiled.h"

#include <gtest/gtest.h>

namespace sac::storage {
namespace {

using runtime::ClusterConfig;
using runtime::Engine;
using runtime::Value;
using runtime::ValueVec;

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : eng_(ClusterConfig{2, 2, 4}) {}
  Engine eng_;
};

TEST_F(StorageTest, RandomTiledIsDeterministicPerSeed) {
  auto a = RandomTiled(&eng_, 20, 20, 8, 99, 0.0, 1.0).value();
  auto b = RandomTiled(&eng_, 20, 20, 8, 99, 0.0, 1.0).value();
  auto c = RandomTiled(&eng_, 20, 20, 8, 100, 0.0, 1.0).value();
  EXPECT_EQ(MaxAbsDiff(&eng_, a, b).value(), 0.0);
  EXPECT_GT(MaxAbsDiff(&eng_, a, c).value(), 0.0);
}

TEST_F(StorageTest, GridGeometryWithEdgeTiles) {
  TiledMatrix m{25, 13, 8, nullptr};
  EXPECT_EQ(m.grid_rows(), 4);
  EXPECT_EQ(m.grid_cols(), 2);
  EXPECT_EQ(m.tile_rows(0), 8);
  EXPECT_EQ(m.tile_rows(3), 1);   // 25 = 3*8 + 1
  EXPECT_EQ(m.tile_cols(1), 5);   // 13 = 8 + 5
}

TEST_F(StorageTest, LocalRoundTrip) {
  Rng rng(1);
  la::Tile local(19, 11);
  local.FillRandom(&rng, -5.0, 5.0);
  auto tiled = FromLocal(&eng_, local, 4).value();
  EXPECT_EQ(eng_.Count(tiled.tiles).value(), 5 * 3);
  auto back = ToLocal(&eng_, tiled).value();
  EXPECT_TRUE(local == back);
}

TEST_F(StorageTest, CooRoundTrip) {
  auto tiled = RandomTiled(&eng_, 17, 9, 4, 7, 0.0, 2.0).value();
  auto coo = ToCoo(&eng_, tiled).value();
  EXPECT_EQ(eng_.Count(coo.entries).value(), 17 * 9);
  auto back = TiledFromCoo(&eng_, coo, 4).value();
  EXPECT_EQ(MaxAbsDiff(&eng_, tiled, back).value(), 0.0);
}

TEST_F(StorageTest, CooRoundTripWithDifferentBlockSize) {
  // Re-tiling through the element representation changes the partitioning
  // but not the matrix.
  auto tiled = RandomTiled(&eng_, 16, 16, 8, 8, 0.0, 1.0).value();
  auto coo = ToCoo(&eng_, tiled).value();
  auto retiled = TiledFromCoo(&eng_, coo, 4).value();
  EXPECT_EQ(retiled.block, 4);
  auto a = ToLocal(&eng_, tiled).value();
  auto b = ToLocal(&eng_, retiled).value();
  EXPECT_TRUE(a == b);
}

TEST_F(StorageTest, SparseRandomHasRequestedDensity) {
  auto m = RandomSparseTiled(&eng_, 64, 64, 16, 5, 0.1, 5).value();
  auto local = ToLocal(&eng_, m).value();
  int64_t nonzero = 0;
  for (int64_t i = 0; i < local.size(); ++i) {
    const double v = local.data()[i];
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 5.0);
    EXPECT_EQ(v, static_cast<int64_t>(v));  // integer ratings
    if (v != 0.0) ++nonzero;
  }
  const double density = static_cast<double>(nonzero) / (64.0 * 64.0);
  EXPECT_NEAR(density, 0.1, 0.03);
}

TEST_F(StorageTest, BlockVectorRoundTrip) {
  std::vector<double> data(23);
  for (size_t i = 0; i < data.size(); ++i) data[i] = 0.5 * i;
  auto v = VectorFromLocal(&eng_, data, 8).value();
  EXPECT_EQ(v.grid(), 3);
  EXPECT_EQ(v.block_len(2), 7);
  auto back = ToLocalVector(&eng_, v).value();
  EXPECT_EQ(back, data);
}

TEST_F(StorageTest, RandomBlockVectorDeterministic) {
  auto a = RandomBlockVector(&eng_, 30, 8, 11, 0.0, 1.0).value();
  auto b = RandomBlockVector(&eng_, 30, 8, 11, 0.0, 1.0).value();
  EXPECT_EQ(ToLocalVector(&eng_, a).value(), ToLocalVector(&eng_, b).value());
}

TEST_F(StorageTest, SparsifyLocalProducesAllElements) {
  auto tiled = RandomTiled(&eng_, 6, 5, 4, 3, 1.0, 2.0).value();
  auto rows = SparsifyLocal(&eng_, tiled).value();
  EXPECT_EQ(rows.size(), 30u);
  auto local = ToLocal(&eng_, tiled).value();
  for (const Value& row : rows) {
    const int64_t i = row.At(0).At(0).AsInt();
    const int64_t j = row.At(0).At(1).AsInt();
    EXPECT_DOUBLE_EQ(row.At(1).AsDouble(), local.At(i, j));
  }
}

TEST_F(StorageTest, InvalidDimensionsRejected) {
  EXPECT_FALSE(RandomTiled(&eng_, 0, 5, 4, 1, 0, 1).ok());
  EXPECT_FALSE(RandomTiled(&eng_, 5, 5, 0, 1, 0, 1).ok());
  EXPECT_FALSE(RandomTiled(&eng_, 5, -1, 4, 1, 0, 1).ok());
  la::Tile t(4, 4);
  EXPECT_FALSE(FromLocal(&eng_, t, -2).ok());
}

TEST_F(StorageTest, MaxAbsDiffShapeMismatch) {
  auto a = RandomTiled(&eng_, 8, 8, 4, 1, 0, 1).value();
  auto b = RandomTiled(&eng_, 8, 9, 4, 1, 0, 1).value();
  EXPECT_FALSE(MaxAbsDiff(&eng_, a, b).ok());
}

TEST_F(StorageTest, RandomCooMatchesCount) {
  auto coo = RandomCoo(&eng_, 9, 7, 21, 0.0, 1.0).value();
  EXPECT_EQ(eng_.Count(coo.entries).value(), 63);
}

class TileGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TileGeometrySweep, RoundTripAnyGeometry) {
  const auto [rows, cols, block] = GetParam();
  Engine eng(ClusterConfig{2, 1, 3});
  Rng rng(rows * 100 + cols);
  la::Tile local(rows, cols);
  local.FillRandom(&rng, -1.0, 1.0);
  auto tiled = FromLocal(&eng, local, block).value();
  auto back = ToLocal(&eng, tiled).value();
  ASSERT_TRUE(local == back);
  // And via the element representation.
  auto coo = ToCoo(&eng, tiled).value();
  auto again = TiledFromCoo(&eng, coo, block).value();
  EXPECT_EQ(MaxAbsDiff(&eng, tiled, again).value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TileGeometrySweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(8, 8, 8),
                      std::make_tuple(9, 7, 4), std::make_tuple(16, 4, 8),
                      std::make_tuple(5, 17, 3), std::make_tuple(31, 33, 16),
                      std::make_tuple(2, 64, 8)));

}  // namespace
}  // namespace sac::storage
