// Tests for the multi-tenant query service (docs/SERVICE.md): session
// isolation (bindings, metrics attribution, memory slices), ticket-based
// concurrent admission, fair multi-queue scheduling on the thread pool,
// the compiled-plan cache, and the ResetStats/in-flight coherence rules
// under concurrent admission. The concurrency tests here are part of the
// tsan suite (scripts/check.sh keeps *Session* in the filter).
#include "src/runtime/session.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/sac.h"
#include "src/common/thread_pool.h"
#include "src/runtime/engine.h"
#include "src/storage/tiled.h"

namespace sac {
namespace {

using runtime::AdmissionGate;
using runtime::ClusterConfig;

// The fig4a-shaped matrix product the paper's service would field from
// many clients at once.
constexpr const char* kMatmul =
    "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]";

ClusterConfig SmallCluster() {
  ClusterConfig cfg{2, 2, 4};
  return cfg;
}

// ---- end-to-end session isolation ------------------------------------------

TEST(SessionTest, InterleavedQueriesMatchSerial) {
  constexpr int kSessions = 4;
  constexpr int64_t kN = 48, kBlock = 16;

  // Serial reference: the same per-session inputs (same seeds), one
  // query at a time.
  std::vector<la::Tile> expected;
  {
    ClusterConfig cfg = SmallCluster();
    cfg.max_concurrent_queries = 1;
    Sac ctx(cfg);
    for (int i = 0; i < kSessions; ++i) {
      auto s = ctx.OpenSession("serial-" + std::to_string(i));
      s->Bind("A", s->RandomMatrix(kN, kN, kBlock, 2 * i + 1).value());
      s->Bind("B", s->RandomMatrix(kN, kN, kBlock, 2 * i + 2).value());
      s->BindScalar("n", int64_t{kN});
      auto c = s->EvalTiled(kMatmul);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      expected.push_back(s->ToLocal(c.value()).value());
    }
  }

  // Concurrent run: one thread per session, all admitted at once.
  ClusterConfig cfg = SmallCluster();
  cfg.max_concurrent_queries = kSessions;
  Sac ctx(cfg);
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(ctx.OpenSession("client-" + std::to_string(i)));
  }
  std::vector<la::Tile> got(kSessions);
  std::vector<Status> status(kSessions);
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      Session& s = *sessions[i];
      auto a = s.RandomMatrix(kN, kN, kBlock, 2 * i + 1);
      auto b = s.RandomMatrix(kN, kN, kBlock, 2 * i + 2);
      if (!a.ok() || !b.ok()) {
        status[i] = a.ok() ? b.status() : a.status();
        return;
      }
      s.Bind("A", a.value());
      s.Bind("B", b.value());
      s.BindScalar("n", int64_t{kN});
      auto c = s.EvalTiled(kMatmul);
      if (!c.ok()) {
        status[i] = c.status();
        return;
      }
      auto local = s.ToLocal(c.value());
      if (!local.ok()) {
        status[i] = local.status();
        return;
      }
      got[i] = std::move(local).value();
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(status[i].ok()) << "session " << i << ": "
                                << status[i].ToString();
    // Byte-identical, not approximately: reduce-side folds run in
    // deterministic source-partition order regardless of interleaving.
    ASSERT_TRUE(expected[i] == got[i]) << "session " << i;
  }
  const MetricsSnapshot snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.queries_admitted, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(ctx.engine().live_queries(), 0);
  EXPECT_EQ(ctx.engine().in_flight(), 0);
}

TEST(SessionTest, SessionMetricsAttribution) {
  Sac ctx(SmallCluster());
  auto busy = ctx.OpenSession("busy");
  auto idle = ctx.OpenSession("idle");

  busy->Bind("A", busy->RandomMatrix(32, 32, 16, 1).value());
  busy->Bind("B", busy->RandomMatrix(32, 32, 16, 2).value());
  busy->BindScalar("n", int64_t{32});
  ASSERT_TRUE(busy->EvalTiled(kMatmul).ok());

  const MetricsSnapshot busy_snap = busy->metrics().Snapshot();
  EXPECT_GT(busy_snap.tasks_run, 0u);
  EXPECT_EQ(busy_snap.queries_admitted, 1u);
  // Engine totals cover the session's work too (dual-sink).
  EXPECT_GE(ctx.metrics().Snapshot().tasks_run, busy_snap.tasks_run);

  const MetricsSnapshot idle_snap = idle->metrics().Snapshot();
  EXPECT_EQ(idle_snap.tasks_run, 0u);
  EXPECT_EQ(idle_snap.queries_admitted, 0u);
}

TEST(SessionTest, PerSessionBudgetEvictsOnlyThatSession) {
  // Global budget unlimited; only the "tight" session has a slice.
  Sac ctx(SmallCluster());
  auto roomy = ctx.OpenSession("roomy", /*memory_budget_bytes=*/0);
  auto tight = ctx.OpenSession("tight", /*memory_budget_bytes=*/16 << 10);

  auto roomy_m = roomy->RandomMatrix(64, 64, 16, 7).value();
  const la::Tile roomy_before = roomy->ToLocal(roomy_m).value();
  const uint64_t roomy_resident = roomy->resident_bytes();
  ASSERT_GT(roomy_resident, 0u);

  // 96x96 doubles ~ 73 KB >> the 16 KB slice: publishing must evict
  // earlier tiles of this session -- and nothing of the other one.
  auto tight_m = tight->RandomMatrix(96, 96, 16, 8).value();
  EXPECT_GT(tight->metrics().Snapshot().evictions, 0u);
  EXPECT_LE(tight->resident_bytes(), tight->memory_budget_bytes());

  EXPECT_EQ(roomy->metrics().Snapshot().evictions, 0u);
  EXPECT_EQ(roomy->resident_bytes(), roomy_resident);

  // Both datasets still read back exactly (evicted tiles reload).
  EXPECT_TRUE(roomy_before == roomy->ToLocal(roomy_m).value());
  auto tight_local = tight->ToLocal(tight_m);
  ASSERT_TRUE(tight_local.ok()) << tight_local.status().ToString();
}

// ---- plan cache ------------------------------------------------------------

TEST(SessionTest, PlanCacheHitPathIsEquivalent) {
  Sac ctx(SmallCluster());
  ctx.Bind("A", ctx.RandomMatrix(32, 32, 16, 1).value());
  ctx.Bind("B", ctx.RandomMatrix(32, 32, 16, 2).value());
  ctx.BindScalar("n", int64_t{32});

  auto first = ctx.EvalTiled(kMatmul);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  MetricsSnapshot snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.plan_cache_misses, 1u);
  EXPECT_EQ(snap.plan_cache_hits, 0u);

  // Same source (modulo whitespace), same bindings: served from cache,
  // byte-identical result.
  const std::string reformatted = std::string("  ") + kMatmul + "\n";
  auto second = ctx.EvalTiled(reformatted);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.plan_cache_misses, 1u);
  EXPECT_EQ(snap.plan_cache_hits, 1u);
  EXPECT_TRUE(ctx.ToLocal(first.value()).value() ==
              ctx.ToLocal(second.value()).value());

  // Rebinding a name to a new matrix changes the key (dataset identity):
  // natural invalidation, no stale plan.
  ctx.Bind("A", ctx.RandomMatrix(32, 32, 16, 3).value());
  ASSERT_TRUE(ctx.EvalTiled(kMatmul).ok());
  snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.plan_cache_misses, 2u);
  EXPECT_EQ(snap.plan_cache_hits, 1u);
}

TEST(SessionTest, PlanCacheDisabledAndEvictions) {
  Sac ctx(SmallCluster());
  ctx.Bind("A", ctx.RandomMatrix(32, 32, 16, 1).value());
  ctx.BindScalar("n", int64_t{32});
  ctx.BindScalar("c", 2.0);
  const std::string scale = "tiled(n,n)[ ((i,j), c*a) | ((i,j),a) <- A ]";

  // Capacity 0 disables the cache entirely: no counters move.
  ctx.plan_cache().set_capacity(0);
  ASSERT_TRUE(ctx.EvalTiled(scale).ok());
  ASSERT_TRUE(ctx.EvalTiled(scale).ok());
  MetricsSnapshot snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.plan_cache_hits, 0u);
  EXPECT_EQ(snap.plan_cache_misses, 0u);

  // Capacity 1: the second distinct query evicts the first.
  ctx.plan_cache().set_capacity(1);
  ASSERT_TRUE(ctx.EvalTiled(scale).ok());
  ASSERT_TRUE(
      ctx.EvalTiled("tiled(n,n)[ ((i,j), c+a) | ((i,j),a) <- A ]").ok());
  snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.plan_cache_misses, 2u);
  EXPECT_EQ(snap.plan_cache_evictions, 1u);
  EXPECT_EQ(ctx.plan_cache().size(), 1u);
}

TEST(SessionTest, PlanCacheKeySemantics) {
  planner::PlannerOptions options;
  planner::Bindings binds;
  binds["n"] = planner::Binding::Scalar(runtime::Value::Int(32));

  // Whitespace-insensitive: reformatting does not split the cache.
  EXPECT_EQ(planner::PlanCacheKey("x  +\n y", binds, options),
            planner::PlanCacheKey("x + y", binds, options));
  EXPECT_NE(planner::PlanCacheKey("x + y", binds, options),
            planner::PlanCacheKey("x + z", binds, options));

  // A scalar rebind changes the key (scalars feed plan extents).
  planner::Bindings binds2 = binds;
  binds2["n"] = planner::Binding::Scalar(runtime::Value::Int(64));
  EXPECT_NE(planner::PlanCacheKey("x + y", binds, options),
            planner::PlanCacheKey("x + y", binds2, options));

  // kLocal bindings make the query uncacheable: empty key.
  binds["v"] = planner::Binding::Local(runtime::Value::Double(2.0));
  EXPECT_EQ(planner::PlanCacheKey("x + y", binds, options), "");
}

// ---- admission gate --------------------------------------------------------

TEST(SessionTest, AdmissionGateBlocksAtCapacity) {
  Metrics metrics;
  AdmissionGate gate(/*max_concurrent=*/1, &metrics);

  AdmissionGate::Ticket first = gate.Admit();
  EXPECT_EQ(gate.live(), 1);

  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    AdmissionGate::Ticket t = gate.Admit();
    second_admitted.store(true);
    t = AdmissionGate::Ticket();  // release
  });
  // The waiter must park: capacity is 1 and `first` is live.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());
  EXPECT_EQ(gate.live(), 1);

  first = AdmissionGate::Ticket();  // release the slot
  waiter.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(gate.live(), 0);

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.queries_admitted, 2u);
  EXPECT_EQ(snap.queries_queued, 1u);
}

TEST(SessionTest, SerializedAdmissionStillCorrect) {
  ClusterConfig cfg = SmallCluster();
  cfg.max_concurrent_queries = 1;
  Sac ctx(cfg);
  auto s1 = ctx.OpenSession("one");
  auto s2 = ctx.OpenSession("two");
  for (Session* s : {s1.get(), s2.get()}) {
    s->Bind("A", s->RandomMatrix(32, 32, 16, s->id()).value());
    s->BindScalar("n", int64_t{32});
  }
  const std::string scale = "tiled(n,n)[ ((i,j), a+a) | ((i,j),a) <- A ]";
  Status st1, st2;
  std::thread t1([&] { st1 = s1->EvalTiled(scale).status(); });
  std::thread t2([&] { st2 = s2->EvalTiled(scale).status(); });
  t1.join();
  t2.join();
  EXPECT_TRUE(st1.ok()) << st1.ToString();
  EXPECT_TRUE(st2.ok()) << st2.ToString();
  EXPECT_EQ(ctx.metrics().Snapshot().queries_admitted, 2u);
  EXPECT_EQ(ctx.engine().live_queries(), 0);
}

// ---- ResetStats coherence --------------------------------------------------

TEST(SessionTest, ResetStatsCoherentAfterConcurrentQueries) {
  Sac ctx(SmallCluster());
  auto s = ctx.OpenSession("client");
  s->Bind("A", s->RandomMatrix(32, 32, 16, 1).value());
  s->BindScalar("n", int64_t{32});
  ASSERT_TRUE(
      s->EvalTiled("tiled(n,n)[ ((i,j), a+a) | ((i,j),a) <- A ]").ok());
  // Both gauges the reset precondition checks must be quiescent the
  // moment Eval returns -- no ticket leaks, no stray pool tasks.
  EXPECT_EQ(ctx.engine().live_queries(), 0);
  EXPECT_EQ(ctx.engine().in_flight(), 0);
  ctx.ResetStats();  // must not abort
  EXPECT_EQ(ctx.metrics().Snapshot().queries_admitted, 0u);
}

// Named outside the *Session* tsan filter on purpose: death tests fork,
// which tsan dislikes; the plain-ASan suite covers it.
TEST(ResetStatsDeathTest, RefusesWhileQueryAdmitted) {
  Sac ctx(SmallCluster());
  AdmissionGate::Ticket ticket = ctx.engine().AdmitQuery();
  EXPECT_EQ(ctx.engine().live_queries(), 1);
  EXPECT_DEATH(ctx.engine().ResetStats(), "admission ticket");
}

// ---- fair multi-queue scheduling -------------------------------------------

// A one-worker pool whose worker is parked on a gate task, so tests can
// stage queue contents deterministically before anything runs.
struct GatedPool {
  GatedPool() : pool(1) {
    pool.Submit([this] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return open; });
    });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  ThreadPool pool;
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
};

TEST(SessionFairQueueTest, DrainsQueuesRoundRobin) {
  GatedPool gated;
  const ThreadPool::QueueId qa = gated.pool.OpenQueue();
  const ThreadPool::QueueId qb = gated.pool.OpenQueue();

  std::mutex order_mu;
  std::vector<char> order;
  auto record = [&](char tag) {
    return [&order_mu, &order, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  // Three tasks from session A stacked up before session B's arrive:
  // round-robin must still alternate rather than draining A first.
  for (int i = 0; i < 3; ++i) gated.pool.Submit(qa, record('a'));
  for (int i = 0; i < 3; ++i) gated.pool.Submit(qb, record('b'));

  gated.Open();
  gated.pool.Wait();
  EXPECT_EQ(std::string(order.begin(), order.end()), "ababab");
}

TEST(SessionFairQueueTest, CloseQueueMigratesPendingTasks) {
  GatedPool gated;
  const ThreadPool::QueueId q = gated.pool.OpenQueue();
  std::atomic<int> ran{0};
  gated.pool.Submit(q, [&] { ran.fetch_add(1); });
  gated.pool.Submit(q, [&] { ran.fetch_add(1); });
  gated.pool.CloseQueue(q);  // pending work survives the session
  // Submitting to the now-closed id falls back to the default queue.
  gated.pool.Submit(q, [&] { ran.fetch_add(1); });

  gated.Open();
  gated.pool.Wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(SessionFairQueueTest, ParallelForOnSessionQueueCoversRange) {
  ThreadPool pool(3);
  const ThreadPool::QueueId q = pool.OpenQueue();
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); },
                   /*chunk=*/0, q);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(pool.in_flight(), 0u);
}

}  // namespace
}  // namespace sac
