#include "src/common/pool.h"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

namespace sac {
namespace {

TEST(PoolTest, AcquireStartsEmptyAndTracksOutstanding) {
  VectorPool<uint8_t> pool;
  EXPECT_EQ(pool.outstanding(), 0u);
  std::vector<uint8_t> v = pool.Acquire();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(pool.acquires(), 1u);
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.Release(std::move(v));
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(PoolTest, ReleasedCapacityIsRecycled) {
  VectorPool<uint8_t> pool;
  std::vector<uint8_t> v = pool.Acquire();
  v.reserve(4096);
  pool.Release(std::move(v));

  std::vector<uint8_t> w = pool.Acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_TRUE(w.empty());            // contents cleared...
  EXPECT_GE(w.capacity(), 4096u);    // ...allocation kept
  pool.Release(std::move(w));
}

TEST(PoolTest, FreelistIsCapped) {
  VectorPool<int> pool(/*max_free=*/2);
  std::vector<int> a = pool.Acquire(), b = pool.Acquire(), c = pool.Acquire();
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  pool.Release(std::move(c));  // dropped: freelist already at max_free
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolTest, TrimDropsFreelistButNotOutstanding) {
  VectorPool<int> pool;
  std::vector<int> held = pool.Acquire();
  pool.Release(pool.Acquire());
  EXPECT_EQ(pool.free_count(), 1u);
  pool.Trim();
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.acquires(), 0u);
  EXPECT_EQ(pool.outstanding(), 1u);  // `held` still checked out
  pool.Release(std::move(held));
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolTest, PooledVecReturnsOnDestruction) {
  VectorPool<uint8_t> pool;
  {
    PooledVec<uint8_t> h = AcquirePooled(&pool);
    h->push_back(7);
    EXPECT_TRUE(h);
    EXPECT_EQ(pool.outstanding(), 1u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(PoolTest, PooledVecMoveTransfersOwnership) {
  VectorPool<uint8_t> pool;
  PooledVec<uint8_t> a = AcquirePooled(&pool);
  a->push_back(1);
  PooledVec<uint8_t> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ(pool.outstanding(), 1u);
  b = PooledVec<uint8_t>();  // move-assign over a live handle releases it
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolTest, DefaultAndNullPoolHandlesOwnNothing) {
  PooledVec<int> def;
  EXPECT_FALSE(def);
  PooledVec<int> null_pool = AcquirePooled<int>(nullptr);
  EXPECT_FALSE(null_pool);
  null_pool->push_back(3);  // plain vector, simply destroyed
  EXPECT_EQ(null_pool->size(), 1u);
}

}  // namespace
}  // namespace sac
