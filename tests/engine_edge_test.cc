// Edge-case and robustness tests for the DISC engine.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/runtime/engine.h"

namespace sac::runtime {
namespace {

ValueVec Pairs(std::initializer_list<std::pair<int, int>> xs) {
  ValueVec out;
  for (auto [k, v] : xs) out.push_back(VPair(VInt(k), VInt(v)));
  return out;
}

TEST(EngineEdgeTest, EmptyDatasetThroughEveryOperator) {
  Engine eng(ClusterConfig{2, 1, 3});
  Dataset empty = eng.Parallelize({}, 3);
  EXPECT_EQ(eng.Count(empty).value(), 0);
  auto mapped = eng.Map(empty, [](const Value& v) { return v; });
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(eng.Count(mapped.value()).value(), 0);
  auto red = eng.ReduceByKey(empty, [](const Value& a, const Value&) {
    return a;
  });
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(eng.Count(red.value()).value(), 0);
  auto joined = eng.Join(empty, empty);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(eng.Count(joined.value()).value(), 0);
  auto grouped = eng.GroupByKey(empty);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(eng.Count(grouped.value()).value(), 0);
}

TEST(EngineEdgeTest, SinglePartitionSingleExecutor) {
  Engine eng(ClusterConfig{1, 1, 1});
  Dataset ds = eng.Parallelize(Pairs({{1, 10}, {1, 20}, {2, 5}}), 1);
  auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
    return VInt(a.AsInt() + b.AsInt());
  });
  ASSERT_TRUE(red.ok());
  auto rows = eng.Collect(red.value()).value();
  ASSERT_EQ(rows.size(), 2u);
  // Single executor: no cross-executor traffic.
  EXPECT_EQ(eng.metrics().cross_executor_bytes(), 0u);
}

TEST(EngineEdgeTest, MorePartitionsThanRows) {
  Engine eng(ClusterConfig{2, 2, 4});
  Dataset ds = eng.Parallelize(Pairs({{1, 1}}), 16);
  EXPECT_EQ(ds->num_partitions(), 16);
  EXPECT_EQ(eng.Count(ds).value(), 1);
  auto grouped = eng.GroupByKey(ds);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(eng.Count(grouped.value()).value(), 1);
}

TEST(EngineEdgeTest, SkewedKeysAllCollideOnOnePartition) {
  Engine eng(ClusterConfig{2, 2, 4});
  ValueVec rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(VPair(VInt(7), VInt(1)));
  Dataset ds = eng.Parallelize(std::move(rows), 8);
  auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
    return VInt(a.AsInt() + b.AsInt());
  });
  ASSERT_TRUE(red.ok());
  auto out = eng.Collect(red.value()).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].At(1).AsInt(), 1000);
}

TEST(EngineEdgeTest, JoinWithDuplicateKeysIsCrossProductPerKey) {
  Engine eng(ClusterConfig{2, 1, 2});
  Dataset a = eng.Parallelize(Pairs({{1, 1}, {1, 2}}), 2);
  Dataset b = eng.Parallelize(Pairs({{1, 10}, {1, 20}, {1, 30}}), 2);
  auto joined = eng.Join(a, b);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(eng.Count(joined.value()).value(), 6);  // 2 x 3
}

TEST(EngineEdgeTest, TupleKeysShuffleCorrectly) {
  Engine eng(ClusterConfig{2, 2, 4});
  ValueVec rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back(VPair(VIdx2(i % 2, i % 3), VInt(1)));
  }
  Dataset ds = eng.Parallelize(std::move(rows), 3);
  auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
    return VInt(a.AsInt() + b.AsInt());
  });
  ASSERT_TRUE(red.ok());
  // 6 distinct (i%2, i%3) pairs for i in 0..5 (Chinese remainder).
  EXPECT_EQ(eng.Count(red.value()).value(), 6);
}

TEST(EngineEdgeTest, UnionPartitionRecovery) {
  Engine eng(ClusterConfig{2, 1, 2});
  Dataset a = eng.Parallelize({VInt(1), VInt(2)}, 2);
  Dataset b = eng.Parallelize({VInt(3)}, 1);
  auto u = eng.Union(a, b).value();
  u->InvalidatePartition(0);
  u->InvalidatePartition(2);  // the partition that came from b
  auto rows = eng.Collect(u).value();
  std::sort(rows.begin(), rows.end(),
            [](const Value& x, const Value& y) { return x.Compare(y) < 0; });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].AsInt(), 3);
}

TEST(EngineEdgeTest, ParallelizeSourceCannotRegenerate) {
  Engine eng(ClusterConfig{2, 1, 2});
  Dataset ds = eng.Parallelize({VInt(1), VInt(2)}, 2);
  ds->InvalidatePartition(0);
  auto rows = eng.Collect(ds);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kRuntimeError);
}

TEST(EngineEdgeTest, GeneratorErrorPropagates) {
  Engine eng(ClusterConfig{2, 1, 2});
  auto gen = eng.GeneratePartitions(4, [](int p, Partition*) {
    if (p == 2) return Status::IoError("synthetic failure");
    return Status::OK();
  });
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kIoError);
}

TEST(EngineEdgeTest, MapPartitionsSeesWholePartition) {
  Engine eng(ClusterConfig{2, 1, 2});
  Dataset ds = eng.Parallelize({VInt(1), VInt(2), VInt(3), VInt(4)}, 2);
  auto sums = eng.MapPartitions(ds, [](const Partition& in, Partition* out) {
    int64_t s = 0;
    for (const Value& v : in) s += v.AsInt();
    out->push_back(VInt(s));
    return Status::OK();
  });
  ASSERT_TRUE(sums.ok());
  auto rows = eng.Collect(sums.value()).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].AsInt() + rows[1].AsInt(), 10);
}

TEST(EngineEdgeTest, ReduceByKeyWithTileValues) {
  // Tiles as aggregation values: the 5.3 pattern at engine level.
  Engine eng(ClusterConfig{2, 2, 4});
  ValueVec rows;
  for (int i = 0; i < 8; ++i) {
    la::Tile t(2, 2);
    t.Set(0, 0, 1.0);
    rows.push_back(VPair(VInt(i % 2), Value::TileVal(std::move(t))));
  }
  Dataset ds = eng.Parallelize(std::move(rows), 4);
  auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
    Value acc = a;
    la::Tile* t = acc.MutableTile();
    for (int64_t i = 0; i < t->size(); ++i) {
      t->data()[i] += b.AsTile().data()[i];
    }
    return acc;
  });
  ASSERT_TRUE(red.ok());
  auto out = eng.Collect(red.value()).value();
  ASSERT_EQ(out.size(), 2u);
  for (const Value& row : out) {
    EXPECT_DOUBLE_EQ(row.At(1).AsTile().At(0, 0), 4.0);
  }
}

TEST(EngineEdgeTest, CollectOrderIsPartitionMajorDeterministic) {
  Engine eng(ClusterConfig{2, 2, 4});
  ValueVec rows;
  for (int i = 0; i < 20; ++i) rows.push_back(VInt(i));
  Dataset ds = eng.Parallelize(std::move(rows), 4);
  auto c1 = eng.Collect(ds).value();
  auto c2 = eng.Collect(ds).value();
  EXPECT_EQ(c1, c2);
}

}  // namespace
}  // namespace sac::runtime
