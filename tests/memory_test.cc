// Tests for the memory manager + block store (src/runtime/memory.h):
// budget accounting, LRU victim selection, pin semantics, spill-reload
// byte identity, the kDataLoss -> lineage-recompute fallback, spill
// footer validation against truncated/corrupted files, concurrent
// publish/pin contention, and end-to-end out-of-core execution through
// the engine.
#include "src/runtime/memory.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/algorithms.h"
#include "src/api/sac.h"
#include "src/runtime/engine.h"
#include "src/storage/spill.h"
#include "src/storage/tiled.h"

namespace sac::runtime::memory {
namespace {

using sac::Sac;

std::string TestDir(const std::string& tag) {
  return ::testing::TempDir() + "sac-memtest-" + tag + "-" +
         std::to_string(::getpid());
}

ValueVec Rows(int64_t salt, int count = 4) {
  ValueVec out;
  for (int i = 0; i < count; ++i) out.push_back(VInt(salt * 1000 + i));
  return out;
}

/// A store plus caller-owned slots, the way DatasetImpl owns parts_.
struct Fixture {
  explicit Fixture(uint64_t budget, const std::string& tag)
      : store(BlockStore::Options{budget, TestDir(tag)}) {
    slots.resize(64);
  }
  ~Fixture() { store.Shutdown(); }

  Status Publish(int owner, int part, int64_t salt, uint64_t bytes) {
    ValueVec& slot = slots[owner * 8 + part];
    slot = Rows(salt);
    return store.Publish(OwnerKey(owner), part, &slot, bytes, StageRef{},
                         "owner" + std::to_string(owner));
  }
  const void* OwnerKey(int owner) const { return &slots[owner * 8]; }

  BlockStore store;
  std::vector<ValueVec> slots;
};

TEST(MemoryManager, ChargeReleaseAndPeak) {
  MemoryManager mgr(1000);
  EXPECT_FALSE(mgr.unlimited());
  mgr.Charge(600);
  mgr.Charge(300);
  EXPECT_EQ(mgr.resident_bytes(), 900u);
  EXPECT_EQ(mgr.peak_resident_bytes(), 900u);
  mgr.Release(500);
  EXPECT_EQ(mgr.resident_bytes(), 400u);
  EXPECT_EQ(mgr.peak_resident_bytes(), 900u);  // peak is monotone
  mgr.RearmPeak();
  EXPECT_EQ(mgr.peak_resident_bytes(), 400u);  // until re-armed
}

TEST(BudgetFromEnv, ParsesSuffixesAndFallsBack) {
  ::setenv("SAC_MEM_BUDGET", "256M", 1);
  EXPECT_EQ(BudgetFromEnv(7), 256ULL << 20);
  ::setenv("SAC_MEM_BUDGET", "2g", 1);
  EXPECT_EQ(BudgetFromEnv(7), 2ULL << 30);
  ::setenv("SAC_MEM_BUDGET", "512K", 1);
  EXPECT_EQ(BudgetFromEnv(7), 512ULL << 10);
  ::setenv("SAC_MEM_BUDGET", "12345", 1);
  EXPECT_EQ(BudgetFromEnv(7), 12345u);
  ::setenv("SAC_MEM_BUDGET", "lots", 1);
  EXPECT_EQ(BudgetFromEnv(7), 7u);  // unparseable: fall back
  ::unsetenv("SAC_MEM_BUDGET");
  EXPECT_EQ(BudgetFromEnv(7), 7u);  // unset: fall back
}

TEST(BlockStore, UnlimitedBudgetNeverEvicts) {
  Fixture f(0, "unlimited");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(f.Publish(0, i, i, 1 << 20).ok());
  }
  EXPECT_EQ(f.store.evictions(), 0u);
  EXPECT_EQ(f.store.resident_bytes(), 8ULL << 20);
}

TEST(BlockStore, EvictsLeastRecentlyUsedFirst) {
  Fixture f(350, "lru");
  ASSERT_TRUE(f.Publish(0, 0, 10, 100).ok());
  ASSERT_TRUE(f.Publish(1, 0, 11, 100).ok());
  ASSERT_TRUE(f.Publish(2, 0, 12, 100).ok());
  // Touch owner0 so owner1 becomes the coldest block.
  ASSERT_TRUE(f.store.Pin(f.OwnerKey(0), 0).ok());
  f.store.Unpin(f.OwnerKey(0), 0);
  ASSERT_TRUE(f.Publish(3, 0, 13, 100).ok());  // 400 > 350: one eviction
  EXPECT_EQ(f.store.evictions(), 1u);
  EXPECT_TRUE(f.store.IsEvicted(f.OwnerKey(1), 0));
  EXPECT_FALSE(f.store.IsEvicted(f.OwnerKey(0), 0));
  EXPECT_FALSE(f.store.IsEvicted(f.OwnerKey(2), 0));
  EXPECT_LE(f.store.resident_bytes(), 350u);
}

TEST(BlockStore, PinnedBlocksAreNeverEvicted) {
  Fixture f(250, "pin");
  ASSERT_TRUE(f.Publish(0, 0, 20, 100).ok());
  ASSERT_TRUE(f.store.Pin(f.OwnerKey(0), 0).ok());  // oldest, but pinned
  ASSERT_TRUE(f.Publish(1, 0, 21, 100).ok());
  ASSERT_TRUE(f.Publish(2, 0, 22, 100).ok());  // 300 > 250: evict owner1
  EXPECT_FALSE(f.store.IsEvicted(f.OwnerKey(0), 0));
  EXPECT_TRUE(f.store.IsEvicted(f.OwnerKey(1), 0));
  EXPECT_EQ(f.store.pinned_blocks(), 1);
  f.store.Unpin(f.OwnerKey(0), 0);
  EXPECT_EQ(f.store.pinned_blocks(), 0);
}

TEST(BlockStore, AllPinnedRunsOverBudgetInsteadOfDeadlocking) {
  Fixture f(150, "overcommit");
  ASSERT_TRUE(f.Publish(0, 0, 30, 100).ok());
  ASSERT_TRUE(f.store.Pin(f.OwnerKey(0), 0).ok());
  ASSERT_TRUE(f.Publish(1, 0, 31, 100).ok());
  ASSERT_TRUE(f.store.Pin(f.OwnerKey(1), 0).ok());
  // Both blocks pinned, 200 resident against 150: Publish must still
  // succeed (over budget) rather than fail or spin.
  ASSERT_TRUE(f.Publish(2, 0, 32, 100).ok());
  EXPECT_GE(f.store.resident_bytes(), 200u);
  f.store.Unpin(f.OwnerKey(0), 0);
  f.store.Unpin(f.OwnerKey(1), 0);
}

TEST(BlockStore, PriorityBlocksOutliveOrdinaryOnes) {
  Fixture f(250, "priority");
  ASSERT_TRUE(f.Publish(0, 0, 40, 100).ok());
  f.store.SetPriority(f.OwnerKey(0), true);  // oldest but priority
  ASSERT_TRUE(f.Publish(1, 0, 41, 100).ok());
  ASSERT_TRUE(f.Publish(2, 0, 42, 100).ok());  // evicts owner1, not owner0
  EXPECT_FALSE(f.store.IsEvicted(f.OwnerKey(0), 0));
  EXPECT_TRUE(f.store.IsEvicted(f.OwnerKey(1), 0));
}

TEST(BlockStore, ReloadRestoresIdenticalRows) {
  Fixture f(250, "reload");
  ASSERT_TRUE(f.Publish(0, 0, 50, 100).ok());
  const ValueVec original = f.slots[0];  // copy before eviction
  ASSERT_TRUE(f.Publish(1, 0, 51, 100).ok());
  ASSERT_TRUE(f.Publish(2, 0, 52, 100).ok());  // evicts owner0
  ASSERT_TRUE(f.store.IsEvicted(f.OwnerKey(0), 0));
  EXPECT_TRUE(f.slots[0].empty());  // rows really left memory

  auto outcome = f.store.Pin(f.OwnerKey(0), 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), PinOutcome::kReloaded);
  ASSERT_EQ(f.slots[0].size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(f.slots[0][i].Compare(original[i]), 0);
  }
  EXPECT_EQ(f.store.reloads(), 1u);
  f.store.Unpin(f.OwnerKey(0), 0);
}

TEST(BlockStore, UnreadableSpillRoutesToRecompute) {
  const std::string dir = TestDir("recompute");
  Fixture f(250, "recompute");
  ASSERT_TRUE(f.Publish(0, 0, 60, 100).ok());
  ASSERT_TRUE(f.Publish(1, 0, 61, 100).ok());
  ASSERT_TRUE(f.Publish(2, 0, 62, 100).ok());  // evicts owner0
  ASSERT_TRUE(f.store.IsEvicted(f.OwnerKey(0), 0));

  // Truncate the eviction spill behind the store's back: the footer
  // check must fail the reload and the store must hand the block back
  // for lineage recomputation instead of erroring out.
  FILE* fp = std::fopen((dir + "/evict-0.spill").c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(::ftruncate(::fileno(fp), 10), 0);
  std::fclose(fp);

  auto outcome = f.store.Pin(f.OwnerKey(0), 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), PinOutcome::kNeedsRecompute);
  // The block was dropped: the recompute path re-publishes it fresh.
  EXPECT_FALSE(f.store.IsRegistered(f.OwnerKey(0), 0));
}

TEST(BlockStore, AccountingIsExactlyZeroAfterTeardown) {
  Fixture f(350, "teardown");
  for (int owner = 0; owner < 4; ++owner) {
    ASSERT_TRUE(f.Publish(owner, 0, 70 + owner, 100).ok());
  }
  EXPECT_GT(f.store.evictions(), 0u);  // budget forced spills
  for (int owner = 0; owner < 4; ++owner) {
    f.store.Unregister(f.OwnerKey(owner));
  }
  EXPECT_EQ(f.store.resident_bytes(), 0u);
  EXPECT_EQ(f.store.registered_blocks(), 0u);
  f.store.Shutdown();
  EXPECT_EQ(f.store.resident_bytes(), 0u);
}

TEST(BlockStore, RepublishReplacesFootprintAndStaleSpill) {
  Fixture f(250, "republish");
  ASSERT_TRUE(f.Publish(0, 0, 80, 100).ok());
  ASSERT_TRUE(f.Publish(1, 0, 81, 100).ok());
  ASSERT_TRUE(f.Publish(2, 0, 82, 100).ok());  // evicts owner0 to disk
  ASSERT_TRUE(f.store.IsEvicted(f.OwnerKey(0), 0));
  // Recompute-style re-publish with a different footprint: the stale
  // spill is dropped and the new charge replaces the old one.
  ASSERT_TRUE(f.Publish(0, 0, 99, 60).ok());
  EXPECT_FALSE(f.store.IsEvicted(f.OwnerKey(0), 0));
  auto outcome = f.store.Pin(f.OwnerKey(0), 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), PinOutcome::kResident);
  EXPECT_EQ(f.slots[0][0].Compare(VInt(99000)), 0);
  f.store.Unpin(f.OwnerKey(0), 0);
}

// Hammers one store from several threads: concurrent Publish / Pin /
// Unpin / Discard on distinct owners with a budget tight enough that
// every thread's blocks keep evicting everyone else's. Run under tsan
// by scripts/check.sh; correctness here is "no race, no lost
// accounting".
TEST(BlockStore, ConcurrentContentionKeepsAccountingConsistent) {
  constexpr int kThreads = 4;
  constexpr int kParts = 8;
  constexpr int kIters = 200;
  BlockStore store(BlockStore::Options{600, TestDir("concurrent")});
  std::vector<std::vector<ValueVec>> slots(kThreads);
  for (auto& s : slots) s.resize(kParts);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const void* owner = &slots[t];
      for (int it = 0; it < kIters; ++it) {
        const int part = it % kParts;
        ValueVec& slot = slots[t][part];
        slot = Rows(t * 100 + part);
        ASSERT_TRUE(store
                        .Publish(owner, part, &slot, 100, StageRef{},
                                 "t" + std::to_string(t))
                        .ok());
        auto outcome = store.Pin(owner, part);
        ASSERT_TRUE(outcome.ok());
        if (outcome.value() != PinOutcome::kNeedsRecompute) {
          ASSERT_FALSE(slot.empty());  // pin really blocks eviction
          store.Unpin(owner, part);
        }
        if (it % 17 == 0) store.Discard(owner, part);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) store.Unregister(&slots[t]);
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_EQ(store.pinned_blocks(), 0);
  store.Shutdown();
}

// ---------------------------------------------------------------------------
// Spill footer hardening (v2 format)
// ---------------------------------------------------------------------------

class SpillFooterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestDir("spill");
    ASSERT_TRUE(storage::EnsureSpillDir(dir_).ok());
    path_ = dir_ + "/footer.spill";
    ASSERT_TRUE(storage::WriteSpill(path_, Rows(7, 16)).ok());
  }
  void TearDown() override { storage::RemoveSpillDir(dir_); }

  void Truncate(long size) {
    FILE* fp = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(fp), size), 0);
    std::fclose(fp);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(SpillFooterTest, RoundTripReadsBack) {
  uint64_t bytes = 0;
  auto rows = storage::ReadSpill(path_, &bytes);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 16u);
  EXPECT_GT(bytes, 0u);
}

TEST_F(SpillFooterTest, TruncatedFileIsDataLoss) {
  Truncate(30);  // mid-payload: footer gone
  auto rows = storage::ReadSpill(path_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
}

TEST_F(SpillFooterTest, TruncatedFooterIsDataLoss) {
  // Chop 8 bytes off the end: size and magic no longer line up.
  FILE* fp = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 0, SEEK_END);
  const long size = std::ftell(fp);
  std::fclose(fp);
  Truncate(size - 8);
  auto rows = storage::ReadSpill(path_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
}

TEST_F(SpillFooterTest, FlippedPayloadByteIsDataLoss) {
  FILE* fp = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 24, SEEK_SET);  // inside the payload
  int c = std::fgetc(fp);
  std::fseek(fp, 24, SEEK_SET);
  std::fputc(c ^ 0xFF, fp);
  std::fclose(fp);
  auto rows = storage::ReadSpill(path_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
}

TEST_F(SpillFooterTest, WrongMagicStaysIoError) {
  // Not a spill file at all: that is a caller bug or a foreign file, not
  // recoverable data loss.
  FILE* fp = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  std::fputc('X', fp);
  std::fclose(fp);
  auto rows = storage::ReadSpill(path_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Engine-level out-of-core execution
// ---------------------------------------------------------------------------

ValueVec Ints(int n) {
  ValueVec out;
  for (int i = 0; i < n; ++i) out.push_back(VInt(i));
  return out;
}

ValueVec Sorted(ValueVec v) {
  std::sort(v.begin(), v.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return v;
}

TEST(EngineOutOfCore, BudgetedRunIsByteIdenticalToUnlimited) {
  ClusterConfig unlimited{2, 2, 8};
  Engine ref(unlimited);
  Dataset ds0 = ref.Parallelize(Ints(400), 8);
  auto mapped0 =
      ref.Map(ds0, [](const Value& v) { return VInt(v.AsInt() * 3); });
  ASSERT_TRUE(mapped0.ok());
  const ValueVec expected = Sorted(ref.Collect(mapped0.value()).value());
  const uint64_t working_set = ref.block_store().peak_resident_bytes();
  ASSERT_GT(working_set, 0u);

  ClusterConfig tight{2, 2, 8};
  tight.memory_budget_bytes = working_set / 4;
  Engine eng(tight);
  Dataset ds = eng.Parallelize(Ints(400), 8);
  auto mapped =
      eng.Map(ds, [](const Value& v) { return VInt(v.AsInt() * 3); });
  ASSERT_TRUE(mapped.ok());
  const ValueVec got = Sorted(eng.Collect(mapped.value()).value());

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].Compare(expected[i]), 0);
  }
  const MetricsSnapshot m = eng.metrics().Snapshot();
  EXPECT_GT(m.evictions, 0u);
  EXPECT_GT(m.bytes_evicted, 0u);
  EXPECT_GT(m.bytes_reloaded, 0u);
  EXPECT_GT(m.peak_resident_bytes, 0u);
}

/// The engine nests a private `sac-spill-<pid>-<n>` directory under the
/// configured base; this wipes those (simulating an operator reclaiming
/// scratch space mid-run).
void RemoveNestedSpillDirs(const std::string& base) {
  DIR* d = ::opendir(base.c_str());
  if (d == nullptr) return;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.rfind("sac-spill-", 0) == 0) {
      storage::RemoveSpillDir(base + "/" + name);
    }
  }
  ::closedir(d);
}

TEST(EngineOutOfCore, LostEvictionSpillFallsBackToLineage) {
  ClusterConfig ref_cfg{2, 2, 4};
  Engine ref(ref_cfg);
  auto expected = storage::ToLocal(
      &ref, storage::RandomTiled(&ref, 64, 64, 8, 5, 0.0, 1.0).value())
                      .value();

  ClusterConfig cfg{2, 2, 4};
  cfg.memory_budget_bytes = 4096;  // far below one 8x8 tile working set
  cfg.spill_dir = TestDir("lostspill");
  ASSERT_TRUE(storage::EnsureSpillDir(cfg.spill_dir).ok());
  Engine eng(cfg);
  auto m = storage::RandomTiled(&eng, 64, 64, 8, 5, 0.0, 1.0).value();
  ASSERT_GT(eng.metrics().Snapshot().evictions, 0u);

  // Destroy every eviction spill behind the engine's back, then read the
  // whole matrix: reloads fail and every lost partition is recomputed
  // from lineage (the deterministic generator), byte-identically.
  RemoveNestedSpillDirs(cfg.spill_dir);
  auto got = storage::ToLocal(&eng, m).value();
  ASSERT_TRUE(expected == got);
  EXPECT_GT(eng.metrics().Snapshot().reload_recomputes, 0u);
  storage::RemoveSpillDir(cfg.spill_dir);
}

TEST(EngineOutOfCore, DatasetTeardownReturnsEveryByte) {
  ClusterConfig cfg{2, 2, 8};
  cfg.memory_budget_bytes = 1 << 20;
  Engine eng(cfg);
  {
    Dataset ds = eng.Parallelize(Ints(300), 8);
    auto sq = eng.Map(ds, [](const Value& v) {
      return VInt(v.AsInt() * v.AsInt());
    });
    ASSERT_TRUE(sq.ok());
    EXPECT_GT(eng.block_store().resident_bytes(), 0u);
  }
  // Both datasets are gone: the budget must be fully repaid.
  EXPECT_EQ(eng.block_store().resident_bytes(), 0u);
  EXPECT_EQ(eng.block_store().registered_blocks(), 0u);
  EXPECT_EQ(eng.block_store().pinned_blocks(), 0);
}

TEST(EngineOutOfCore, TiledMultiplyUnderQuarterBudgetMatches) {
  // fig4b-shaped smoke: C = A * B on tiles, unlimited vs quarter budget.
  la::Tile ref_local;
  uint64_t peak = 0;
  {
    Sac ctx(ClusterConfig{2, 2, 4});
    auto a = ctx.RandomMatrix(96, 96, 16, 1).value();
    auto b = ctx.RandomMatrix(96, 96, 16, 2).value();
    auto c = algo::Multiply(&ctx, a, b);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ref_local = ctx.ToLocal(c.value()).value();
    peak = ctx.engine().block_store().peak_resident_bytes();
    ASSERT_GT(peak, 0u);
  }
  {
    ClusterConfig tight{2, 2, 4};
    tight.memory_budget_bytes = peak / 4;
    Sac ctx(tight);
    auto a = ctx.RandomMatrix(96, 96, 16, 1).value();
    auto b = ctx.RandomMatrix(96, 96, 16, 2).value();
    auto c = algo::Multiply(&ctx, a, b);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    la::Tile local = ctx.ToLocal(c.value()).value();

    ASSERT_TRUE(ref_local == local);  // byte-identical, not approximately
    EXPECT_GT(ctx.metrics().Snapshot().evictions, 0u);
    EXPECT_GT(ctx.metrics().Snapshot().bytes_reloaded, 0u);
  }
}

}  // namespace
}  // namespace sac::runtime::memory
