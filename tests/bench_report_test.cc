// Validates the machine-readable bench report: BenchReporter must write
// JSON that parses, carries per-stage shuffle_bytes, and whose stage
// counters sum to the reported totals.
#include "bench/bench_common.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tests/test_json.h"

namespace sac::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BenchReportTest, WritesParsableJsonWithPerStageShuffle) {
  const std::string out_path = testing::TempDir() + "/BENCH_selftest.json";
  const std::string trace_path = testing::TempDir() + "/selftest.trace.json";

  Sac ctx;
  {
    const char* argv[] = {"bench", "--out", out_path.c_str(), "--trace",
                          trace_path.c_str()};
    BenchReporter reporter("selftest", 5, const_cast<char**>(argv));
    Row row = TimeQuery(&ctx, "selftest", "reduce", 64, 64, [&] {
      runtime::ValueVec rows;
      for (int i = 0; i < 64; ++i) {
        rows.push_back(runtime::VPair(runtime::VInt(i % 7),
                                      runtime::VInt(i)));
      }
      runtime::Dataset ds = ctx.engine().Parallelize(std::move(rows), 4);
      auto red = ctx.engine().ReduceByKey(
          ds, [](const runtime::Value& a, const runtime::Value& b) {
            return runtime::VInt(a.AsInt() + b.AsInt());
          });
      ASSERT_TRUE(red.ok());
    });
    reporter.Report(row);
    reporter.CaptureTrace(&ctx);
  }  // reporter destructor writes both files

  testjson::JsonValue doc;
  ASSERT_TRUE(testjson::ParseJson(ReadFile(out_path), &doc));
  EXPECT_EQ(doc.At("bench").str, "selftest");
  const auto& rows = doc.At("rows");
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.array.size(), 1u);
  const auto& row = rows.array[0];
  EXPECT_EQ(row.At("series").str, "reduce");
  ASSERT_TRUE(row.Has("totals"));
  ASSERT_TRUE(row.At("stages").is_array());

  // Per-stage shuffle_bytes present, nonzero on the shuffle stage, and
  // summing to the totals.
  int64_t summed = 0;
  int64_t shuffle_stage_bytes = 0;
  for (const auto& stage : row.At("stages").array) {
    ASSERT_TRUE(stage.Has("shuffle_bytes"));
    ASSERT_TRUE(stage.Has("label"));
    ASSERT_TRUE(stage.Has("task_us"));
    summed += stage.At("shuffle_bytes").Int();
    if (stage.At("kind").str == "shuffle") {
      shuffle_stage_bytes += stage.At("shuffle_bytes").Int();
    }
  }
  EXPECT_GT(shuffle_stage_bytes, 0);
  EXPECT_EQ(summed, row.At("totals").At("shuffle_bytes").Int());
  EXPECT_EQ(summed, shuffle_stage_bytes);  // narrow/source stages: zero

  // The --trace flag wrote a parsable Chrome trace with task spans.
  testjson::JsonValue trace_doc;
  ASSERT_TRUE(testjson::ParseJson(ReadFile(trace_path), &trace_doc));
  ASSERT_TRUE(trace_doc.At("traceEvents").is_array());
  EXPECT_FALSE(trace_doc.At("traceEvents").array.empty());
}

}  // namespace
}  // namespace sac::bench
