// Further evaluator coverage: patterns, mixed arithmetic, builders, and
// failure modes that must be Status errors rather than crashes.
#include <gtest/gtest.h>

#include "src/comp/eval.h"
#include "src/comp/parser.h"

namespace sac::comp {
namespace {

using runtime::Value;
using runtime::ValueVec;
using runtime::VDouble;
using runtime::VInt;
using runtime::VPair;

Result<Value> EvalStr(Evaluator* ev, const std::string& src) {
  SAC_ASSIGN_OR_RETURN(ExprPtr e, Parse(src));
  return ev->Eval(e);
}

TEST(EvalEdgeTest, PatternMatchBindsNested) {
  Env env;
  auto p = ParsePattern("((i,j),(a,b))").value();
  Value v = VPair(runtime::VIdx2(1, 2), VPair(VDouble(3), VDouble(4)));
  ASSERT_TRUE(Evaluator::MatchPattern(p, v, &env).ok());
  EXPECT_EQ(env.Lookup("i")->AsInt(), 1);
  EXPECT_EQ(env.Lookup("b")->AsDouble(), 4.0);
}

TEST(EvalEdgeTest, PatternMismatchIsError) {
  Env env;
  auto p = ParsePattern("(a,b,c)").value();
  EXPECT_FALSE(
      Evaluator::MatchPattern(p, VPair(VInt(1), VInt(2)), &env).ok());
  EXPECT_FALSE(Evaluator::MatchPattern(p, VInt(1), &env).ok());
}

TEST(EvalEdgeTest, ShadowingUsesInnermostBinding) {
  Evaluator ev;
  Value v = EvalStr(&ev,
                    "[ x | x <- 0 until 3, let x = x * 10 ]")
                .value();
  EXPECT_EQ(v.AsList()[2].AsInt(), 20);
}

TEST(EvalEdgeTest, MixedIntDoubleArithmeticWidens) {
  Evaluator ev;
  EXPECT_DOUBLE_EQ(EvalStr(&ev, "1 + 2.5").value().AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(EvalStr(&ev, "7 / 2.0").value().AsDouble(), 3.5);
  EXPECT_TRUE(EvalStr(&ev, "2 == 2.0").value().AsBool());
  EXPECT_TRUE(EvalStr(&ev, "1 < 1.5").value().AsBool());
}

TEST(EvalEdgeTest, ShortCircuitPreventsEvaluation) {
  Evaluator ev;
  // The right side would be a division by zero.
  EXPECT_FALSE(EvalStr(&ev, "false && (1/0 == 1)").value().AsBool());
  EXPECT_TRUE(EvalStr(&ev, "true || (1/0 == 1)").value().AsBool());
}

TEST(EvalEdgeTest, GuardMustBeBoolean) {
  Evaluator ev;
  auto r = EvalStr(&ev, "[ i | i <- 0 until 3, i + 1 ]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("guard"), std::string::npos);
}

TEST(EvalEdgeTest, ConcatReductionFlattens) {
  Evaluator ev;
  Value v = EvalStr(&ev, "++/[ [i, i+1] | i <- 0 until 2 ]").value();
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.AsList().size(), 4u);
}

TEST(EvalEdgeTest, MatrixBuilderIgnoresOutOfRange) {
  // The paper's builder guards indices; out-of-range pairs are dropped.
  Evaluator ev;
  ev.Bind("n", VInt(2));
  Value v = EvalStr(&ev,
                    "matrix(n,n)[ ((i,i), 1.0) | i <- 0 until 5 ]")
                .value();
  ASSERT_TRUE(v.is_tile());
  EXPECT_DOUBLE_EQ(v.AsTile().At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(v.AsTile().At(1, 1), 1.0);
}

TEST(EvalEdgeTest, BuilderLastWriteWins) {
  Evaluator ev;
  Value v = EvalStr(&ev,
                    "vector(1)[ (0, toDouble(i)) | i <- 0 until 4 ]")
                .value();
  EXPECT_DOUBLE_EQ(v.AsList()[0].At(1).AsDouble(), 3.0);
}

TEST(EvalEdgeTest, UnknownBuilderIsError) {
  Evaluator ev;
  auto r = EvalStr(&ev, "frobnicate(3)[ (i,i) | i <- 0 until 3 ]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("frobnicate"), std::string::npos);
}

TEST(EvalEdgeTest, RangeTooLargeIsError) {
  Evaluator ev;
  EXPECT_FALSE(EvalStr(&ev, "[ i | i <- 0 until 100000000 ]").ok());
}

TEST(EvalEdgeTest, GroupByLiftsMultipleVariables) {
  Evaluator ev;
  // Both a (generator value) and c (let) lift; their bags stay aligned.
  Value v = EvalStr(&ev,
                    "[ (k, (+/a) - (+/c)) | (k0, a) <- "
                    "[ (i % 2, toDouble(i)) | i <- 0 until 6 ],"
                    " let c = a + 1.0, group by k : k0 ]")
                .value();
  ASSERT_EQ(v.AsList().size(), 2u);
  // sum(a) - sum(a+1) = -3 for groups of size 3.
  EXPECT_DOUBLE_EQ(v.AsList()[0].At(1).AsDouble(), -3.0);
  EXPECT_DOUBLE_EQ(v.AsList()[1].At(1).AsDouble(), -3.0);
}

TEST(EvalEdgeTest, EmptyComprehensionYieldsEmptyList) {
  Evaluator ev;
  Value v = EvalStr(&ev, "[ i | i <- 0 until 5, i > 99 ]").value();
  EXPECT_TRUE(v.is_list());
  EXPECT_TRUE(v.AsList().empty());
}

TEST(EvalEdgeTest, TupleComparisonInGuards) {
  Evaluator ev;
  Value v = EvalStr(&ev,
                    "[ (i,j) | i <- 0 until 3, j <- 0 until 3,"
                    " (i,j) < (j,i) ]")
                .value();
  EXPECT_EQ(v.AsList().size(), 3u);  // strictly-lower pairs
}

TEST(EvalEdgeTest, WildcardPatternsSkipBinding) {
  Evaluator ev;
  ev.Bind("M", Value::List({VPair(runtime::VIdx2(0, 0), VDouble(5)),
                            VPair(runtime::VIdx2(0, 1), VDouble(6))}));
  Value v = EvalStr(&ev, "+/[ v | (_, v) <- M ]").value();
  EXPECT_DOUBLE_EQ(v.AsDouble(), 11.0);
}

TEST(EvalEdgeTest, StringEqualityInGroupKeys) {
  Evaluator ev;
  ev.Bind("E", Value::List({VPair(Value::Str("x"), VInt(1)),
                            VPair(Value::Str("y"), VInt(2)),
                            VPair(Value::Str("x"), VInt(3))}));
  Value v = EvalStr(&ev, "[ (d, +/n) | (d, n) <- E, group by d ]").value();
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].At(1).AsInt(), 4);
}

}  // namespace
}  // namespace sac::comp
