// Source-span accuracy: the lexer's token end positions and the parser's
// AST spans, which the analyzer's diagnostics rely on for file:line:col
// output.
#include <gtest/gtest.h>

#include "src/comp/ast.h"
#include "src/comp/lexer.h"
#include "src/comp/parser.h"

namespace sac::comp {
namespace {

TEST(Spans, LexerTracksTokenEndPositions) {
  auto toks = Lex("ab + cde");
  ASSERT_TRUE(toks.ok());
  const std::vector<Token>& t = toks.value();
  ASSERT_GE(t.size(), 4u);  // ab + cde EOF
  EXPECT_EQ(t[0].pos.line, 1);
  EXPECT_EQ(t[0].pos.col, 1);
  EXPECT_EQ(t[0].end_pos.col, 3);  // one past 'ab'
  EXPECT_EQ(t[1].pos.col, 4);
  EXPECT_EQ(t[1].end_pos.col, 5);
  EXPECT_EQ(t[2].pos.col, 6);
  EXPECT_EQ(t[2].end_pos.col, 9);
}

TEST(Spans, LexerTracksPositionsAcrossLines) {
  auto toks = Lex("a\n  bb12\n    3.5");
  ASSERT_TRUE(toks.ok());
  const std::vector<Token>& t = toks.value();
  EXPECT_EQ(t[1].pos.line, 2);
  EXPECT_EQ(t[1].pos.col, 3);
  EXPECT_EQ(t[1].end_pos.col, 7);
  EXPECT_EQ(t[2].pos.line, 3);
  EXPECT_EQ(t[2].pos.col, 5);
  EXPECT_EQ(t[2].end_pos.col, 8);
}

TEST(Spans, BinaryExpressionSpansTheWholeConstruct) {
  auto e = Parse("abc + de * f");
  ASSERT_TRUE(e.ok());
  const ExprPtr& root = e.value();
  ASSERT_TRUE(root->span.IsSet());
  EXPECT_EQ(root->span.begin.line, 1);
  EXPECT_EQ(root->span.begin.col, 1);
  EXPECT_EQ(root->span.end.col, 13);  // one past 'f'
  // The rhs product spans "de * f".
  const ExprPtr& rhs = root->children[1];
  EXPECT_EQ(rhs->span.begin.col, 7);
  EXPECT_EQ(rhs->span.end.col, 13);
}

TEST(Spans, ComprehensionQualifiersCarrySpans) {
  auto e = Parse(
      "[ v | ((i,j),v) <- A,\n"
      "      i == j ]");
  ASSERT_TRUE(e.ok());
  const ExprPtr& root = e.value();
  ASSERT_EQ(root->kind, Expr::Kind::kComprehension);
  ASSERT_EQ(root->quals.size(), 2u);
  const Qualifier& gen = root->quals[0];
  EXPECT_EQ(gen.span.begin.line, 1);
  EXPECT_EQ(gen.span.begin.col, 7);
  EXPECT_EQ(gen.span.end.col, 21);  // one past 'A'
  const Qualifier& guard = root->quals[1];
  EXPECT_EQ(guard.span.begin.line, 2);
  EXPECT_EQ(guard.span.begin.col, 7);
  EXPECT_EQ(guard.span.end.col, 13);  // one past 'j'
}

TEST(Spans, MultiLineConstructSpansAcrossLines) {
  auto e = Parse("aa +\n  bb");
  ASSERT_TRUE(e.ok());
  const ExprPtr& root = e.value();
  EXPECT_EQ(root->span.begin.line, 1);
  EXPECT_EQ(root->span.begin.col, 1);
  EXPECT_EQ(root->span.end.line, 2);
  EXPECT_EQ(root->span.end.col, 5);
}

TEST(Spans, PatternSpansCoverTheTuple) {
  auto e = Parse("[ v | ((i,j),v) <- A ]");
  ASSERT_TRUE(e.ok());
  const Qualifier& gen = e.value()->quals[0];
  ASSERT_NE(gen.pattern, nullptr);
  ASSERT_TRUE(gen.pattern->span.IsSet());
  EXPECT_EQ(gen.pattern->span.begin.col, 7);
  EXPECT_EQ(gen.pattern->span.end.col, 16);  // one past ')'
}

TEST(Spans, ParseErrorsReportPositions) {
  auto e = Parse("tiled(n,n)[ ((i,j), v ");
  ASSERT_FALSE(e.ok());
  // Status messages end with " at line:col".
  EXPECT_NE(e.status().message().find(" at "), std::string::npos)
      << e.status().ToString();
}

}  // namespace
}  // namespace sac::comp
