// Tests for rule (15): group-by elimination when the key is an injective
// array index, plus the singleton-reduction cleanup -- and the planner
// consequence: such queries take the shuffle-free 5.1 path.
#include <gtest/gtest.h>

#include "src/api/sac.h"
#include "src/comp/eval.h"
#include "src/comp/parser.h"
#include "src/comp/rewrite.h"

namespace sac::comp {
namespace {

using runtime::Value;
using runtime::VDouble;
using runtime::VInt;
using runtime::VPair;

ExprPtr MustParse(const std::string& src) {
  auto r = Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

bool HasGroupBy(const ExprPtr& e) {
  if (e->kind == Expr::Kind::kComprehension) {
    for (const Qualifier& q : e->quals) {
      if (q.kind == Qualifier::Kind::kGroupBy) return true;
      if (q.expr && HasGroupBy(q.expr)) return true;
    }
  }
  for (const auto& c : e->children) {
    if (HasGroupBy(c)) return true;
  }
  return false;
}

TEST(Rule15Test, EliminatesInjectiveKey) {
  // Key (i,j) = the generator's full index pattern: unique.
  ExprPtr e = MustParse(
      "[ ((i,j), +/v) | ((i,j),v) <- M, group by (i,j) ]");
  ExprPtr out = EliminateInjectiveGroupBy(e);
  EXPECT_FALSE(HasGroupBy(out));
}

TEST(Rule15Test, KeepsNonInjectiveKeys) {
  // Key i only: groups whole rows; must stay.
  ExprPtr e = MustParse("[ (i, +/v) | ((i,j),v) <- M, group by i ]");
  EXPECT_TRUE(HasGroupBy(EliminateInjectiveGroupBy(e)));
  // Two generators: joins can duplicate keys; must stay.
  ExprPtr e2 = MustParse(
      "[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N, kk == k,"
      " let v = a*b, group by (i,j) ]");
  EXPECT_TRUE(HasGroupBy(EliminateInjectiveGroupBy(e2)));
}

TEST(Rule15Test, PreservesMeaning) {
  Evaluator ev;
  ValueVec m;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      m.push_back(VPair(runtime::VIdx2(i, j), VDouble(i * 3 + j)));
    }
  }
  ev.Bind("M", Value::List(std::move(m)));
  ExprPtr e = MustParse(
      "[ ((i,j), +/v) | ((i,j),v) <- M, v > 2.0, group by (i,j) ]");
  ExprPtr out = SimplifySingletonReductions(EliminateInjectiveGroupBy(e));
  Value v1 = ev.Eval(e).value();
  Value v2 = ev.Eval(out).value();
  EXPECT_TRUE(v1.Equals(v2)) << v1.ToString() << " vs " << v2.ToString();
}

TEST(Rule15Test, SingletonReductionsCollapse) {
  ExprPtr sum = SimplifySingletonReductions(MustParse("+/[x]"));
  // [x] parses to list(x); the reduction collapses to x.
  EXPECT_EQ(sum->ToString(), "x");
  EXPECT_EQ(SimplifySingletonReductions(MustParse("count/[x]"))->ToString(),
            "1");
  EXPECT_EQ(SimplifySingletonReductions(MustParse("min/[x]"))->ToString(),
            "x");
  // Non-singleton lists are untouched.
  ExprPtr two = SimplifySingletonReductions(MustParse("+/[x, y]"));
  EXPECT_EQ(two->kind, Expr::Kind::kReduce);
}

TEST(Rule15Test, PlannerTakesShuffleFreePath) {
  // With the redundant group-by eliminated, the planner compiles this to
  // the 5.1 tiling-preserving map instead of a 5.3 shuffle.
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  ctx.Bind("A", ctx.RandomMatrix(16, 16, 8, 1).value());
  ctx.BindScalar("n", int64_t{16});
  const std::string src =
      "tiled(n,n)[ ((i,j), +/v) | ((i,j),v) <- A, group by (i,j) ]";
  auto q = ctx.Compile(src);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().strategy, planner::Strategy::kTilingPreserving)
      << q.value().explanation;
  // And it still computes the identity map.
  auto out = ctx.ToLocal(ctx.EvalTiled(src).value()).value();
  auto in = ctx.ToLocal(ctx.bindings().at("A").tiled).value();
  EXPECT_TRUE(out == in);
}

}  // namespace
}  // namespace sac::comp
