// The MLlib-like baseline must be numerically equivalent to SAC's
// generated plans (they implement the same mathematics); the paper's
// performance comparison is meaningful only under that equivalence.
#include <gtest/gtest.h>

#include "src/api/algorithms.h"
#include "src/api/sac.h"
#include "src/baseline/block_matrix.h"

namespace sac {
namespace {

using baseline::BlockMatrix;
using storage::TiledMatrix;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : ctx_(runtime::ClusterConfig{2, 2, 4}) {}

  void ExpectSame(const TiledMatrix& a, const TiledMatrix& b, double tol) {
    auto la_ = ctx_.ToLocal(a).value();
    auto lb = ctx_.ToLocal(b).value();
    ASSERT_EQ(la_.rows(), lb.rows());
    ASSERT_EQ(la_.cols(), lb.cols());
    for (int64_t i = 0; i < la_.size(); ++i) {
      ASSERT_NEAR(la_.data()[i], lb.data()[i], tol) << "cell " << i;
    }
  }

  Sac ctx_;
};

TEST_F(BaselineTest, AddMatchesSac) {
  auto a = ctx_.RandomMatrix(30, 22, 8, 1).value();
  auto b = ctx_.RandomMatrix(30, 22, 8, 2).value();
  auto sac = algo::Add(&ctx_, a, b).value();
  auto ml = BlockMatrix::FromTiled(a)
                .Add(&ctx_.engine(), BlockMatrix::FromTiled(b))
                .value();
  ExpectSame(sac, ml.ToTiled(), 1e-12);
}

TEST_F(BaselineTest, MultiplyMatchesSac) {
  auto a = ctx_.RandomMatrix(24, 18, 6, 3).value();
  auto b = ctx_.RandomMatrix(18, 20, 6, 4).value();
  auto sac = algo::Multiply(&ctx_, a, b).value();
  auto ml = BlockMatrix::FromTiled(a)
                .Multiply(&ctx_.engine(), BlockMatrix::FromTiled(b))
                .value();
  ExpectSame(sac, ml.ToTiled(), 1e-8);
}

TEST_F(BaselineTest, MultiplyNonSquareGrid) {
  auto a = ctx_.RandomMatrix(25, 13, 8, 5).value();
  auto b = ctx_.RandomMatrix(13, 31, 8, 6).value();
  auto sac = algo::Multiply(&ctx_, a, b).value();
  auto ml = BlockMatrix::FromTiled(a)
                .Multiply(&ctx_.engine(), BlockMatrix::FromTiled(b))
                .value();
  ExpectSame(sac, ml.ToTiled(), 1e-8);
}

TEST_F(BaselineTest, TransposeMatchesSac) {
  auto a = ctx_.RandomMatrix(20, 12, 8, 7).value();
  auto sac = algo::Transpose(&ctx_, a).value();
  auto ml = BlockMatrix::FromTiled(a).Transpose(&ctx_.engine()).value();
  ExpectSame(sac, ml.ToTiled(), 0.0);
}

TEST_F(BaselineTest, AxpbyAndScale) {
  auto a = ctx_.RandomMatrix(16, 16, 8, 8).value();
  auto b = ctx_.RandomMatrix(16, 16, 8, 9).value();
  auto ml = BlockMatrix::FromTiled(a)
                .Axpby(&ctx_.engine(), 2.0, -0.5, BlockMatrix::FromTiled(b))
                .value();
  auto la_ = ctx_.ToLocal(a).value();
  auto lb = ctx_.ToLocal(b).value();
  auto lo = ctx_.ToLocal(ml.ToTiled()).value();
  for (int64_t i = 0; i < lo.size(); ++i) {
    ASSERT_NEAR(lo.data()[i], 2.0 * la_.data()[i] - 0.5 * lb.data()[i],
                1e-12);
  }
  auto scaled = BlockMatrix::FromTiled(a).Scale(&ctx_.engine(), 3.0).value();
  auto ls = ctx_.ToLocal(scaled.ToTiled()).value();
  for (int64_t i = 0; i < ls.size(); ++i) {
    ASSERT_DOUBLE_EQ(ls.data()[i], 3.0 * la_.data()[i]);
  }
}

TEST_F(BaselineTest, ShapeMismatchIsAnError) {
  auto a = ctx_.RandomMatrix(16, 16, 8, 10).value();
  auto b = ctx_.RandomMatrix(16, 12, 8, 11).value();
  auto r = BlockMatrix::FromTiled(a).Add(&ctx_.engine(),
                                         BlockMatrix::FromTiled(b));
  EXPECT_FALSE(r.ok());
  auto m = BlockMatrix::FromTiled(b).Multiply(&ctx_.engine(),
                                              BlockMatrix::FromTiled(b));
  EXPECT_FALSE(m.ok());
}

TEST_F(BaselineTest, FactorizationStepsAgree) {
  // One gradient-descent step computed by the baseline library and by the
  // SAC comprehensions must coincide (same math, same data).
  const int64_t n = 24, k = 8, blk = 8;
  auto r = ctx_.RandomSparseMatrix(n, n, blk, 12, 0.1, 5).value();
  auto p0 = ctx_.RandomMatrix(n, k, blk, 13, 0.0, 1.0).value();
  auto q0 = ctx_.RandomMatrix(n, k, blk, 14, 0.0, 1.0).value();
  const double gamma = 0.002, lambda = 0.02;

  auto sac = algo::FactorizationStep(&ctx_, r, algo::Factorization{p0, q0},
                                     gamma, lambda);
  ASSERT_TRUE(sac.ok()) << sac.status().ToString();

  baseline::FactorizationState st{BlockMatrix::FromTiled(p0),
                                  BlockMatrix::FromTiled(q0)};
  auto ml = baseline::FactorizationStep(&ctx_.engine(),
                                        BlockMatrix::FromTiled(r), st, gamma,
                                        lambda);
  ASSERT_TRUE(ml.ok()) << ml.status().ToString();

  ExpectSame(sac.value().p, ml.value().p.ToTiled(), 1e-8);
  ExpectSame(sac.value().q, ml.value().q.ToTiled(), 1e-8);
}

TEST_F(BaselineTest, FrobeniusMatchesSacTotalAggregate) {
  auto a = ctx_.RandomMatrix(20, 20, 8, 15).value();
  auto ml = BlockMatrix::FromTiled(a).FrobeniusSquared(&ctx_.engine());
  auto sac = algo::FrobeniusSquared(&ctx_, a);
  ASSERT_TRUE(ml.ok());
  ASSERT_TRUE(sac.ok());
  EXPECT_NEAR(ml.value(), sac.value(), 1e-6);
}

}  // namespace
}  // namespace sac
