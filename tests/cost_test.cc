// Tests for the symbolic shape pass and the calibrated cost model
// (src/analysis/shape.h, cost.h): source shapes from bindings, the Union
// / scalar edge cases of the abstract domain, whole-plan estimates and
// multiply-strategy advice, the analysis.json round-trip, and the
// compile-time shuffle predictions recorded across EvalLoop rebinds.
#include "src/analysis/cost.h"

#include <gtest/gtest.h>

#include "src/analysis/analysis.h"
#include "src/analysis/shape.h"
#include "src/api/sac.h"
#include "src/common/json.h"
#include "src/planner/plan.h"

namespace sac::analysis {
namespace {

using planner::Binding;
using planner::Bindings;
using planner::PlanBuilder;
using planner::PlanNode;
using planner::PlanNodePtr;

Binding Matrix(int64_t rows, int64_t cols, int64_t block = 64) {
  return Binding::Tiled(storage::TiledMatrix{rows, cols, block, nullptr});
}

Bindings SquareMatmulBinds(int64_t n, int64_t block = 64) {
  Bindings binds;
  binds.emplace("A", Matrix(n, n, block));
  binds.emplace("B", Matrix(n, n, block));
  binds.emplace("n", Binding::Scalar(runtime::Value::Int(n)));
  binds.emplace("m", Binding::Scalar(runtime::Value::Int(n)));
  return binds;
}

constexpr const char* kMatmul =
    "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
    "kk == k, let v = a*b, group by (i,j) ]";

// ---------------------------------------------------------------------------
// Shape inference
// ---------------------------------------------------------------------------

TEST(ShapeInference, SourceShapeFromTiledBinding) {
  Bindings binds;
  binds.emplace("A", Matrix(512, 256, 64));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanGraph g{src, pb.TakeNodes(), &binds, 0};
  const ShapeMap shapes = InferShapes(g);
  const SymbolicShape& s = shapes.at(src.get());
  ASSERT_TRUE(s.known);
  EXPECT_EQ(s.grid_rows, 8);
  EXPECT_EQ(s.grid_cols, 4);
  EXPECT_DOUBLE_EQ(s.records, 32.0);
  // One 64x64 tile of doubles plus the per-record framing overhead.
  EXPECT_DOUBLE_EQ(s.bytes_per_record, 64 * 64 * 8 + kRecordOverheadBytes);
  EXPECT_EQ(s.spread, SymbolicShape::Spread::kUniform);
}

TEST(ShapeInference, WithoutBindingsEveryShapeIsTop) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", src, 2);
  PlanGraph g{mid, pb.TakeNodes()};
  const ShapeMap shapes = InferShapes(g);
  EXPECT_FALSE(shapes.at(src.get()).known);
  EXPECT_FALSE(shapes.at(mid.get()).known);
}

TEST(ShapeInference, UnionMergesMatchingGridsAndTopsMismatched) {
  // Matching tile grids concatenate; mismatched block sizes merge to top
  // instead of silently mixing incompatible grids.
  Bindings binds;
  binds.emplace("A", Matrix(256, 256, 64));
  binds.emplace("B", Matrix(128, 256, 64));
  binds.emplace("C", Matrix(256, 256, 32));
  PlanBuilder pb;
  PlanNodePtr a = pb.Source("A", 2);
  PlanNodePtr b = pb.Source("B", 2);
  PlanNodePtr c = pb.Source("C", 2);
  auto mk_union = [](PlanNodePtr x, PlanNodePtr y) {
    auto u = std::make_shared<PlanNode>();
    u->op = PlanNode::Op::kUnion;
    u->label = "union";
    u->inputs = {std::move(x), std::move(y)};
    return u;
  };
  PlanNodePtr ok = mk_union(a, b);
  PlanNodePtr bad = mk_union(a, c);
  std::vector<PlanNodePtr> nodes = pb.TakeNodes();
  nodes.push_back(ok);
  nodes.push_back(bad);
  PlanGraph g{bad, nodes, &binds, 0};
  const ShapeMap shapes = InferShapes(g);

  const SymbolicShape& merged = shapes.at(ok.get());
  ASSERT_TRUE(merged.known);
  EXPECT_EQ(merged.grid_rows, 4 + 2);
  EXPECT_EQ(merged.grid_cols, 4);
  EXPECT_DOUBLE_EQ(merged.records, 16.0 + 8.0);

  EXPECT_FALSE(shapes.at(bad.get()).known);  // 64 vs 32 blocks: top
}

TEST(ShapeInference, ScalarSourceIsTopAndEstimateDegrades) {
  // A source over a scalar binding has no distributed shape; the cost
  // model must degrade to a partial (non-exact) estimate, not crash.
  Bindings binds;
  binds.emplace("s", Binding::Scalar(runtime::Value::Int(7)));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("s", 0);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", src, 0);
  PlanGraph g{mid, pb.TakeNodes(), &binds, 0};
  const ShapeMap shapes = InferShapes(g);
  EXPECT_FALSE(shapes.at(src.get()).known);
  const CostEstimate est = EstimateCost(g);
  EXPECT_FALSE(est.exact);
  EXPECT_NE(RenderCostTable(est).find("extents unresolved"),
            std::string::npos);
}

TEST(ShapeInference, ScalarOperandsKeepMatmulShapesExact) {
  // Scalars broadcast into closures, not into the dataflow: their
  // presence must not poison exactness of the tiled plan.
  Bindings binds = SquareMatmulBinds(256);
  binds.emplace("alpha", Binding::Scalar(runtime::Value::Double(0.5)));
  auto report = AnalyzeQuery(
      "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b*alpha, group by (i,j) ]",
      binds);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().has_cost);
  EXPECT_TRUE(report.value().cost_exact);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModel, EngineShuffleLabelsMatchEngineStages) {
  EXPECT_STREQ(EngineShuffleLabel(PlanNode::Op::kJoin), "join");
  EXPECT_STREQ(EngineShuffleLabel(PlanNode::Op::kCoGroup), "cogroup");
  EXPECT_STREQ(EngineShuffleLabel(PlanNode::Op::kReduceByKey),
               "reduceByKey");
  EXPECT_STREQ(EngineShuffleLabel(PlanNode::Op::kGroupByKey), "groupByKey");
  EXPECT_STREQ(EngineShuffleLabel(PlanNode::Op::kPartitionBy),
               "partitionBy");
  EXPECT_EQ(EngineShuffleLabel(PlanNode::Op::kMap), nullptr);
}

TEST(CostModel, MatmulEstimateIsExactAndPredictsShuffles) {
  auto report = AnalyzeQuery(kMatmul, SquareMatmulBinds(256));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const AnalysisReport& r = report.value();
  ASSERT_TRUE(r.has_cost);
  EXPECT_TRUE(r.cost_exact);
  EXPECT_GT(r.shuffle_bytes, 0);
  EXPECT_GE(r.shuffle_bytes, r.cross_bytes);
  EXPECT_GT(r.tasks, 0);
  EXPECT_GT(r.flops, 0);
  EXPECT_GT(r.est_ms, 0);
  ASSERT_FALSE(r.predicted_shuffle_by_label.empty());
  for (const auto& [label, bytes] : r.predicted_shuffle_by_label) {
    EXPECT_FALSE(label.empty());
    EXPECT_GT(bytes, 0) << label;
  }
  EXPECT_NE(r.cost_table.find("cost:"), std::string::npos);
  EXPECT_NE(r.cost_table.find("est"), std::string::npos);
}

TEST(CostModel, AdviceFlipsWithScale) {
  // The fig4b crossover: per-grid-cell cogroup replication (~2g^3 panels)
  // beats the join's 2g^2 tiles only while the task term dominates, so
  // the model must prefer 5.4 on tiny grids and 5.3 on large ones.
  planner::PlannerOptions opts;
  opts.auto_strategy = false;  // pin 5.4 so the advice has an alternative

  for (const auto& [n, expect_gbj_cheaper] :
       std::vector<std::pair<int64_t, bool>>{{128, true}, {1024, false}}) {
    Bindings binds = SquareMatmulBinds(n);
    auto report = AnalyzeQuery(kMatmul, binds, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().strategy, "GroupByJoin(5.4)") << n;

    // Re-derive the advice straight from the cost model.
    Sac ctx;
    ctx.options().auto_strategy = false;
    ctx.Bind("A", storage::TiledMatrix{n, n, 64, nullptr});
    ctx.Bind("B", storage::TiledMatrix{n, n, 64, nullptr});
    ctx.BindScalar("n", n);
    ctx.BindScalar("m", n);
    auto compiled = ctx.Compile(kMatmul);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    const MultiplyAdvice adv = AdviseMultiply(PlanGraph::FromQuery(
        compiled.value(), &ctx.bindings(), 0, runtime::ClusterConfig()));
    ASSERT_TRUE(adv.applicable) << n;
    EXPECT_TRUE(adv.chosen_is_gbj) << n;
    EXPECT_GT(adv.chosen_ms, 0) << n;
    EXPECT_GT(adv.alternative_ms, 0) << n;
    EXPECT_EQ(adv.chosen_ms <= adv.alternative_ms, expect_gbj_cheaper) << n;
  }
}

// ---------------------------------------------------------------------------
// analysis.json round-trip
// ---------------------------------------------------------------------------

TEST(AnalysisJson, RoundTripsThroughJsonParse) {
  auto report = AnalyzeQuery(kMatmul, SquareMatmulBinds(256));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const AnalysisReport& r = report.value();
  const std::string text = RenderAnalysisJson(r, "q.sac");

  json::Value v;
  ASSERT_TRUE(json::Parse(text, &v).ok()) << text;
  EXPECT_EQ(v.GetInt("analysis_version"), 1);
  EXPECT_EQ(v.GetStr("file"), "q.sac");
  EXPECT_EQ(v.GetStr("strategy"), r.strategy);
  ASSERT_TRUE(v.At("diagnostics").is_array());
  EXPECT_EQ(v.At("diagnostics").array.size(), r.diagnostics.size());
  ASSERT_TRUE(v.At("cost").is_object());
  const json::Value& cost = v.At("cost");
  EXPECT_EQ(cost.At("exact").boolean, r.cost_exact);
  EXPECT_DOUBLE_EQ(cost.GetNum("shuffle_bytes"), r.shuffle_bytes);
  EXPECT_DOUBLE_EQ(cost.GetNum("est_ms"), r.est_ms);
  ASSERT_TRUE(cost.At("nodes").is_array());
  EXPECT_EQ(cost.At("nodes").array.size(), r.cost_rows.size());
  ASSERT_FALSE(cost.At("nodes").array.empty());
  const json::Value& row = cost.At("nodes").array[0];
  EXPECT_EQ(row.GetStr("node"), r.cost_rows[0].node);
  EXPECT_DOUBLE_EQ(row.GetNum("records"), r.cost_rows[0].records);
  ASSERT_TRUE(cost.At("predicted_shuffle_by_label").is_object());
  EXPECT_EQ(cost.At("predicted_shuffle_by_label").object.size(),
            r.predicted_shuffle_by_label.size());
}

TEST(AnalysisJson, DiagnosticsCarryEstimatedBytes) {
  // A pinned-suboptimal multiply produces a quantified SAC-W07 whose
  // estimated_bytes lands in the JSON rendering.
  planner::PlannerOptions opts;
  opts.auto_strategy = false;
  auto report = AnalyzeQuery(kMatmul, SquareMatmulBinds(1024), opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string text = RenderAnalysisJson(report.value(), "w07.sac");
  json::Value v;
  ASSERT_TRUE(json::Parse(text, &v).ok()) << text;
  ASSERT_EQ(v.At("diagnostics").array.size(), 1u) << text;
  const json::Value& d = v.At("diagnostics").array[0];
  EXPECT_EQ(d.GetStr("code"), "SAC-W07");
  EXPECT_GT(d.GetNum("estimated_bytes"), 1 << 20);
}

// ---------------------------------------------------------------------------
// Compile-time shuffle predictions across Eval / EvalLoop rebinds
// ---------------------------------------------------------------------------

TEST(Predictions, EvalRecordsPerLabelShuffleBytes) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(32, 32, 8, 1).value());
  ctx.Bind("B", ctx.RandomMatrix(32, 32, 8, 2).value());
  ctx.BindScalar("n", int64_t{32});
  ctx.BindScalar("m", int64_t{32});
  ASSERT_TRUE(ctx.Eval(kMatmul).ok());
  ASSERT_FALSE(ctx.predicted_shuffle_bytes().empty());
  for (const auto& [label, bytes] : ctx.predicted_shuffle_bytes()) {
    EXPECT_GT(bytes, 0) << label;
  }
  ctx.ResetStats();
  EXPECT_TRUE(ctx.predicted_shuffle_bytes().empty());
}

TEST(Predictions, EvalLoopRebindsAccumulatePredictions) {
  // Loop-carried rebinds: the second EvalLoop re-plans against the
  // rebound target C; shapes stay resolved and predictions accumulate
  // monotonically across the two updates.
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  ctx.Bind("A", ctx.RandomMatrix(16, 16, 8, 1).value());
  ctx.Bind("B", ctx.RandomMatrix(16, 16, 8, 2).value());
  ctx.Bind("C", ctx.RandomMatrix(16, 16, 8, 3, 0.0, 0.0).value());
  ctx.BindScalar("n", int64_t{16});
  const char* program =
      "for i = 0, n-1 do for k = 0, n-1 do for j = 0, n-1 do"
      "  C[i,j] += A[i,k] * B[k,j];";
  ASSERT_TRUE(ctx.EvalLoop(program).ok());
  const std::map<std::string, double> once = ctx.predicted_shuffle_bytes();
  ASSERT_FALSE(once.empty());
  ASSERT_TRUE(ctx.EvalLoop(program).ok());
  const std::map<std::string, double>& twice = ctx.predicted_shuffle_bytes();
  ASSERT_EQ(twice.size(), once.size());
  for (const auto& [label, bytes] : once) {
    EXPECT_NEAR(twice.at(label), 2 * bytes, 1e-6) << label;
  }
}

}  // namespace
}  // namespace sac::analysis
