#include "src/common/status.h"

#include <gtest/gtest.h>

namespace sac {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, WithContextPrefixes) {
  Status st = Status::PlanError("no rule").WithContext("matrix multiply");
  EXPECT_EQ(st.message(), "matrix multiply: no rule");
  EXPECT_EQ(st.code(), StatusCode::kPlanError);
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st = Status::OK().WithContext("ctx");
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SAC_ASSIGN_OR_RETURN(int h, Half(x));
  SAC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

Status FailIf(bool fail) {
  if (fail) return Status::RuntimeError("boom");
  return Status::OK();
}

Status Chained(bool fail) {
  SAC_RETURN_NOT_OK(FailIf(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chained(false).ok());
  EXPECT_FALSE(Chained(true).ok());
}

}  // namespace
}  // namespace sac
