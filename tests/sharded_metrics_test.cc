// The sharded Metrics must fold to exact totals under concurrent writers
// (the whole point of sharding is lock-free writes with no lost counts).
#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"

namespace sac {
namespace {

TEST(ShardedMetricsTest, ConcurrentWritersFoldExactly) {
  Metrics m;
  ThreadPool pool(8);
  constexpr size_t kOps = 20000;
  pool.ParallelFor(kOps, [&](size_t i) {
    m.AddShuffle(3, 1, i % 2 == 0);
    m.AddLocalShuffle(5);
    m.AddTask();
    m.AddRecords(2);
    if (i % 10 == 0) m.AddRecompute();
  });
  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.shuffle_bytes, 3 * kOps);
  EXPECT_EQ(s.shuffle_records, kOps);
  EXPECT_EQ(s.cross_executor_bytes, 3 * (kOps / 2));
  EXPECT_EQ(s.local_shuffle_bytes, 5 * kOps);
  EXPECT_EQ(s.tasks_run, kOps);
  EXPECT_EQ(s.records_processed, 2 * kOps);
  EXPECT_EQ(s.tasks_recomputed, kOps / 10);
}

TEST(ShardedMetricsTest, GettersMatchSnapshot) {
  Metrics m;
  m.AddShuffle(10, 2, true);
  m.AddLocalShuffle(7);
  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(m.shuffle_bytes(), s.shuffle_bytes);
  EXPECT_EQ(m.shuffle_records(), s.shuffle_records);
  EXPECT_EQ(m.cross_executor_bytes(), s.cross_executor_bytes);
  EXPECT_EQ(m.local_shuffle_bytes(), s.local_shuffle_bytes);
}

TEST(ShardedMetricsTest, ResetClearsEveryShard) {
  Metrics m;
  ThreadPool pool(8);
  // Writers spread across threads land on several shards; Reset must
  // clear them all, not just the caller's.
  pool.ParallelFor(1000, [&](size_t) {
    m.AddShuffle(1, 1, true);
    m.AddLocalShuffle(1);
    m.AddTask();
  });
  m.Reset();
  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.shuffle_bytes, 0u);
  EXPECT_EQ(s.shuffle_records, 0u);
  EXPECT_EQ(s.cross_executor_bytes, 0u);
  EXPECT_EQ(s.local_shuffle_bytes, 0u);
  EXPECT_EQ(s.tasks_run, 0u);
}

TEST(ShardedMetricsTest, StageStatsForwardLocalShuffleToTotals) {
  Metrics totals;
  StageStats stage(1, "s", "shuffle", &totals);
  stage.AddLocalShuffle(11);
  stage.AddShuffle(4, 1, false);
  EXPECT_EQ(stage.counters().local_shuffle_bytes(), 11u);
  EXPECT_EQ(totals.local_shuffle_bytes(), 11u);
  EXPECT_EQ(totals.shuffle_bytes(), 4u);
}

}  // namespace
}  // namespace sac
