// Coverage of the array operations the paper's introduction lists as
// expressible by comprehensions: inner and outer products of vectors,
// matrix addition/multiplication, rotation and transpose, slicing and
// concatenation. Whatever strategy the planner chooses, the result must
// match the reference evaluation -- totality and correctness together.
#include <gtest/gtest.h>

#include "src/api/sac.h"

namespace sac {
namespace {

class CoverageTest : public ::testing::Test {
 protected:
  CoverageTest() : ctx_(runtime::ClusterConfig{2, 2, 4}) {
    ctx_.Bind("U", ctx_.RandomVector(12, 4, 1, 0.0, 2.0).value());
    ctx_.Bind("V", ctx_.RandomVector(12, 4, 2, 0.0, 2.0).value());
    ctx_.Bind("A", ctx_.RandomMatrix(12, 12, 4, 3).value());
    ctx_.Bind("B", ctx_.RandomMatrix(12, 12, 4, 4).value());
    ctx_.BindScalar("n", int64_t{12});
  }

  /// Runs `src`, converts any result kind to a flat double vector, and
  /// compares against the reference evaluator.
  void CheckAgainstReference(const std::string& src) {
    auto r = ctx_.Eval(src);
    ASSERT_TRUE(r.ok()) << src << " -> " << r.status().ToString();
    auto ref = ctx_.ReferenceEval(src);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    std::vector<double> got, want;
    switch (r.value().kind) {
      case planner::QueryResult::Kind::kTiled: {
        auto t = ctx_.ToLocal(r.value().tiled).value();
        got.assign(t.data(), t.data() + t.size());
        const la::Tile& rt = ref.value().AsTile();
        want.assign(rt.data(), rt.data() + rt.size());
        break;
      }
      case planner::QueryResult::Kind::kBlockVector: {
        got = ctx_.ToLocal(r.value().vec).value();
        for (const auto& p : ref.value().AsList()) {
          want.push_back(p.At(1).AsDouble());
        }
        break;
      }
      case planner::QueryResult::Kind::kValue: {
        if (r.value().value.is_numeric()) {
          got.push_back(r.value().value.AsDouble());
          want.push_back(ref.value().AsDouble());
        } else {
          // Lists: compare sorted element-wise.
          ASSERT_TRUE(r.value().value.is_list());
          for (const auto& p : r.value().value.AsList()) {
            got.push_back(p.At(1).AsDouble());
          }
          for (const auto& p : ref.value().AsList()) {
            want.push_back(p.At(1).AsDouble());
          }
          std::sort(got.begin(), got.end());
          std::sort(want.begin(), want.end());
        }
        break;
      }
    }
    ASSERT_EQ(got.size(), want.size()) << src;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-8) << src << " at " << i;
    }
  }

  Sac ctx_;
};

TEST_F(CoverageTest, InnerProduct) {
  CheckAgainstReference("+/[ u*v | (i,u) <- U, (j,v) <- V, j == i ]");
}

TEST_F(CoverageTest, OuterProduct) {
  CheckAgainstReference(
      "tiled(n,n)[ ((i,j), u*v) | (i,u) <- U, (j,v) <- V ]");
}

TEST_F(CoverageTest, MatrixAddition) {
  CheckAgainstReference(
      "tiled(n,n)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]");
}

TEST_F(CoverageTest, MatrixMultiplication) {
  CheckAgainstReference(
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]");
}

TEST_F(CoverageTest, Transpose) {
  CheckAgainstReference("tiled(n,n)[ ((j,i),a) | ((i,j),a) <- A ]");
}

TEST_F(CoverageTest, RowRotation) {
  CheckAgainstReference(
      "tiled(n,n)[ (((i+1) % n, j), v) | ((i,j),v) <- A ]");
}

TEST_F(CoverageTest, ColumnRotation) {
  CheckAgainstReference(
      "tiled(n,n)[ ((i, (j+3) % n), v) | ((i,j),v) <- A ]");
}

TEST_F(CoverageTest, SliceUpperLeftBlock) {
  ctx_.BindScalar("h", int64_t{6});
  CheckAgainstReference(
      "tiled(h,h)[ ((i,j),v) | ((i,j),v) <- A, i < h, j < h ]");
}

TEST_F(CoverageTest, SliceWithOffsetReindexes) {
  ctx_.BindScalar("h", int64_t{6});
  CheckAgainstReference(
      "tiled(h,h)[ ((i-h, j-h), v) | ((i,j),v) <- A,"
      " i >= h, j >= h ]");
}

TEST_F(CoverageTest, VerticalConcatenation) {
  ctx_.BindScalar("two_n", int64_t{24});
  // [A; B] stacked: B's rows shift down by n. Expressed as two
  // comprehension queries whose union is taken by re-running the builder
  // over a combined generator via indexing shifts.
  CheckAgainstReference(
      "tiled(two_n,n)[ ((i,j),v) | ((i,j),v) <- A ]");
  CheckAgainstReference(
      "tiled(two_n,n)[ ((i+n,j),v) | ((i,j),v) <- B ]");
}

TEST_F(CoverageTest, ScalarTimesMatrixPlusDiagonalExtraction) {
  CheckAgainstReference(
      "tiled(n)[ (i, 2.0*a) | ((i,j),a) <- A, i == j ]");
}

TEST_F(CoverageTest, RowAndColumnReductions) {
  CheckAgainstReference("tiled(n)[ (i, +/a) | ((i,j),a) <- A, group by i ]");
  CheckAgainstReference("tiled(n)[ (j, +/a) | ((i,j),a) <- A, group by j ]");
  CheckAgainstReference(
      "tiled(n)[ (i, max/a) | ((i,j),a) <- A, group by i ]");
  CheckAgainstReference(
      "tiled(n)[ (i, min/a) | ((i,j),a) <- A, group by i ]");
}

TEST_F(CoverageTest, TotalAggregations) {
  CheckAgainstReference("+/[ a | ((i,j),a) <- A ]");
  CheckAgainstReference("max/[ a | ((i,j),a) <- A ]");
  CheckAgainstReference("min/[ a*a | ((i,j),a) <- A ]");
  CheckAgainstReference("avg/[ a | ((i,j),a) <- A ]");
  CheckAgainstReference("count/[ a | ((i,j),a) <- A, i < 3 ]");
}

TEST_F(CoverageTest, HadamardAndScaledSum) {
  CheckAgainstReference(
      "tiled(n,n)[ ((i,j), a*b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]");
  CheckAgainstReference(
      "tiled(n,n)[ ((i,j), 0.25*a + 0.75*b) | ((i,j),a) <- A,"
      " ((ii,jj),b) <- B, ii == i, jj == j ]");
}

}  // namespace
}  // namespace sac
