// Tests for the executor-local zero-copy shuffle fast path: result
// equivalence against the serialize-everything path, exact byte
// accounting (local + remote == old total), pooled-buffer hygiene on
// success and error paths, and the ResetStats in-flight guard.
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/runtime/engine.h"

namespace sac::runtime {
namespace {

ValueVec MixedPairs(int n) {
  ValueVec rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(VPair(VInt(i % 13), VTuple({VInt(i), VDouble(i * 0.5)})));
  }
  return rows;
}

/// Runs `query` on a fresh engine with the fast path forced on or off and
/// returns the collected rows plus the engine's final counter snapshot.
struct RunResult {
  ValueVec rows;
  MetricsSnapshot counters;
};
template <typename QueryFn>
RunResult RunWithPath(bool fast, QueryFn&& query) {
  Engine eng(ClusterConfig{3, 2, 6});
  eng.set_shuffle_fast_path(fast);
  Result<Dataset> out = query(&eng);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  RunResult r;
  r.rows = eng.Collect(out.value()).value();
  r.counters = eng.metrics().Snapshot();
  return r;
}

void ExpectIdenticalRows(const ValueVec& a, const ValueVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i]))
        << "row " << i << ": " << a[i].ToString() << " vs "
        << b[i].ToString();
  }
}

/// The two paths must agree byte-for-byte: same rows in the same order
/// (reduce folds are order-sensitive), and the fast path's local + remote
/// byte split must sum to the serialize path's single total.
void CheckPathEquivalence(
    const std::function<Result<Dataset>(Engine*)>& query) {
  RunResult fast = RunWithPath(true, query);
  RunResult slow = RunWithPath(false, query);
  ExpectIdenticalRows(fast.rows, slow.rows);

  EXPECT_EQ(slow.counters.local_shuffle_bytes, 0u);
  EXPECT_EQ(fast.counters.shuffle_bytes + fast.counters.local_shuffle_bytes,
            slow.counters.shuffle_bytes);
  EXPECT_EQ(fast.counters.shuffle_records, slow.counters.shuffle_records);
  // With the fast path on, everything still serialized is cross-executor
  // by construction.
  EXPECT_EQ(fast.counters.shuffle_bytes, fast.counters.cross_executor_bytes);
  EXPECT_EQ(fast.counters.cross_executor_bytes,
            slow.counters.cross_executor_bytes);
  // This workload genuinely exercises both routes.
  EXPECT_GT(fast.counters.local_shuffle_bytes, 0u);
  EXPECT_GT(fast.counters.shuffle_bytes, 0u);
}

TEST(ShufflePathTest, GroupByKeyEquivalent) {
  CheckPathEquivalence([](Engine* eng) {
    Dataset ds = eng->Parallelize(MixedPairs(500), 6);
    return eng->GroupByKey(ds);
  });
}

TEST(ShufflePathTest, ReduceByKeyEquivalent) {
  CheckPathEquivalence([](Engine* eng) {
    ValueVec rows;
    for (int i = 0; i < 400; ++i) rows.push_back(VPair(VInt(i % 9), VInt(i)));
    Dataset ds = eng->Parallelize(std::move(rows), 6);
    return eng->ReduceByKey(ds, [](const Value& a, const Value& b) {
      return VInt(a.AsInt() + b.AsInt());
    });
  });
}

TEST(ShufflePathTest, JoinEquivalent) {
  CheckPathEquivalence([](Engine* eng) {
    ValueVec left, right;
    for (int i = 0; i < 200; ++i) {
      left.push_back(VPair(VInt(i % 17), VInt(i)));
      right.push_back(VPair(VInt(i % 17), VDouble(i * 2.0)));
    }
    Dataset a = eng->Parallelize(std::move(left), 5);
    Dataset b = eng->Parallelize(std::move(right), 4);
    return eng->Join(a, b);
  });
}

TEST(ShufflePathTest, SingleExecutorShufflesEverythingLocally) {
  Engine eng(ClusterConfig{1, 4, 4});
  Dataset ds = eng.Parallelize(MixedPairs(300), 4);
  ASSERT_TRUE(eng.GroupByKey(ds).ok());
  const MetricsSnapshot c = eng.metrics().Snapshot();
  EXPECT_EQ(c.shuffle_bytes, 0u);
  EXPECT_EQ(c.cross_executor_bytes, 0u);
  EXPECT_GT(c.local_shuffle_bytes, 0u);
}

TEST(ShufflePathTest, LineageRecoveryMatchesOnBothPaths) {
  for (bool fast : {true, false}) {
    Engine eng(ClusterConfig{2, 2, 4});
    eng.set_shuffle_fast_path(fast);
    Dataset ds = eng.Parallelize(MixedPairs(200), 4);
    Result<Dataset> grouped = eng.GroupByKey(ds);
    ASSERT_TRUE(grouped.ok());
    ValueVec before = eng.Collect(grouped.value()).value();
    grouped.value()->InvalidatePartition(1);
    ValueVec after = eng.Collect(grouped.value()).value();
    ExpectIdenticalRows(before, after);
  }
}

TEST(ShufflePathTest, PooledBuffersAllReturnedAfterQuery) {
  Engine eng(ClusterConfig{2, 2, 4});
  Dataset ds = eng.Parallelize(MixedPairs(300), 4);
  ASSERT_TRUE(eng.GroupByKey(ds).ok());
  EXPECT_EQ(eng.shuffle_buffer_pool().outstanding(), 0u);
  EXPECT_EQ(eng.row_scratch_pool().outstanding(), 0u);
  EXPECT_GT(eng.shuffle_buffer_pool().acquires() +
                eng.row_scratch_pool().acquires(),
            0u);

  // A second identical stage runs on recycled allocations.
  ASSERT_TRUE(eng.GroupByKey(ds).ok());
  EXPECT_GT(eng.shuffle_buffer_pool().reuses() +
                eng.row_scratch_pool().reuses(),
            0u);
  EXPECT_EQ(eng.shuffle_buffer_pool().outstanding(), 0u);
  EXPECT_EQ(eng.row_scratch_pool().outstanding(), 0u);
}

TEST(ShufflePathTest, PooledBuffersReturnedOnFailedShuffle) {
  Engine eng(ClusterConfig{2, 2, 4});
  // One malformed (non-pair) row: its partition's map side fails while
  // the other partitions bucket normally; every checked-out buffer must
  // come back regardless.
  ValueVec rows = MixedPairs(300);
  rows[0] = VInt(42);
  Dataset ds = eng.Parallelize(std::move(rows), 4);
  Result<Dataset> out = eng.GroupByKey(ds);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(eng.shuffle_buffer_pool().outstanding(), 0u);
  EXPECT_EQ(eng.row_scratch_pool().outstanding(), 0u);
  EXPECT_EQ(eng.in_flight(), 0);
}

TEST(ShufflePathTest, EnvVarDisablesFastPath) {
  ASSERT_EQ(setenv("SAC_SHUFFLE_FAST_PATH", "off", 1), 0);
  Engine off_eng{ClusterConfig{}};
  EXPECT_FALSE(off_eng.shuffle_fast_path());

  ASSERT_EQ(setenv("SAC_SHUFFLE_FAST_PATH", "1", 1), 0);
  Engine on_eng{ClusterConfig{}};
  EXPECT_TRUE(on_eng.shuffle_fast_path());

  ASSERT_EQ(unsetenv("SAC_SHUFFLE_FAST_PATH"), 0);
  Engine default_eng{ClusterConfig{}};
  EXPECT_TRUE(default_eng.shuffle_fast_path());
}

TEST(ShufflePathTest, InFlightDropsToZeroAfterQueries) {
  Engine eng(ClusterConfig{2, 2, 4});
  EXPECT_EQ(eng.in_flight(), 0);
  Dataset ds = eng.Parallelize(MixedPairs(100), 4);
  ASSERT_TRUE(eng.GroupByKey(ds).ok());
  EXPECT_EQ(eng.in_flight(), 0);
  eng.ResetStats();  // quiescent engine: must not abort
}

TEST(EngineDeathTest, ResetStatsDuringQueryAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Engine eng(ClusterConfig{2, 2, 4});
        ValueVec rows;
        for (int i = 0; i < 8; ++i) rows.push_back(VInt(i));
        Dataset ds = eng.Parallelize(std::move(rows), 2);
        auto mapped = eng.Map(ds, [&eng](const Value& v) {
          eng.ResetStats();  // misuse: a query is executing right now
          return v;
        });
        (void)mapped;
      },
      "ResetStats called while a query is executing");
}

}  // namespace
}  // namespace sac::runtime
