#include "src/storage/io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace sac::storage {
namespace {

class IoTest : public ::testing::Test {
 protected:
  IoTest() : eng_(runtime::ClusterConfig{2, 1, 3}) {
    path_ = ::testing::TempDir() + "/sac_io_test.tiles";
  }
  ~IoTest() override { std::remove(path_.c_str()); }

  runtime::Engine eng_;
  std::string path_;
};

TEST_F(IoTest, SaveLoadRoundTrip) {
  auto m = RandomTiled(&eng_, 25, 13, 8, 77, -1.0, 1.0).value();
  ASSERT_TRUE(SaveTiled(&eng_, m, path_).ok());
  auto back = LoadTiled(&eng_, path_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().rows, 25);
  EXPECT_EQ(back.value().cols, 13);
  EXPECT_EQ(back.value().block, 8);
  EXPECT_EQ(MaxAbsDiff(&eng_, m, back.value()).value(), 0.0);
}

TEST_F(IoTest, MissingFileIsIoError) {
  auto r = LoadTiled(&eng_, "/nonexistent/dir/foo.tiles");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, GarbageFileRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a tile file", f);
  std::fclose(f);
  auto r = LoadTiled(&eng_, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, TruncatedFileRejected) {
  auto m = RandomTiled(&eng_, 16, 16, 8, 78, 0.0, 1.0).value();
  ASSERT_TRUE(SaveTiled(&eng_, m, path_).ok());
  // Truncate in the middle of the tile payload.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadTiled(&eng_, path_).ok());
}

}  // namespace
}  // namespace sac::storage
