// Tests for the public Sac facade: binding management, compile/eval
// surfaces, reference evaluation, and planner-option plumbing.
#include <gtest/gtest.h>

#include "src/api/sac.h"

namespace sac {
namespace {

TEST(ApiTest, BindUnbindLifecycle) {
  Sac ctx;
  ctx.BindScalar("n", int64_t{8});
  ctx.Bind("A", ctx.RandomMatrix(8, 8, 4, 1).value());
  EXPECT_EQ(ctx.bindings().size(), 2u);
  EXPECT_TRUE(ctx.Eval("tiled(n,n)[ ((i,j),a) | ((i,j),a) <- A ]").ok());
  ctx.Unbind("A");
  EXPECT_FALSE(ctx.Eval("tiled(n,n)[ ((i,j),a) | ((i,j),a) <- A ]").ok());
}

TEST(ApiTest, RebindingReplaces) {
  Sac ctx;
  ctx.BindScalar("c", 2.0);
  ctx.Bind("A", ctx.RandomMatrix(8, 8, 4, 2).value());
  ctx.BindScalar("n", int64_t{8});
  auto r1 = ctx.ToLocal(
                   ctx.EvalTiled("tiled(n,n)[ ((i,j),c*a) | ((i,j),a) <- A ]")
                       .value())
                .value();
  ctx.BindScalar("c", 3.0);
  auto r2 = ctx.ToLocal(
                   ctx.EvalTiled("tiled(n,n)[ ((i,j),c*a) | ((i,j),a) <- A ]")
                       .value())
                .value();
  for (int64_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r2.data()[i], r1.data()[i] * 1.5);
  }
}

TEST(ApiTest, ParseAndNormalizeExposesRewrites) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(8, 8, 4, 3).value());
  ctx.BindScalar("n", int64_t{8});
  auto e = ctx.ParseAndNormalize(
      "tiled(n,n)[ ((i,j), a + A[i,j]) | ((i,j),a) <- A ]");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // Indexing was desugared into a second generator.
  const std::string s = e.value()->ToString();
  EXPECT_EQ(s.find("A["), std::string::npos);
}

TEST(ApiTest, CompileDoesNotExecute) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(16, 16, 8, 4).value());
  ctx.Bind("B", ctx.RandomMatrix(16, 16, 8, 5).value());
  ctx.BindScalar("n", int64_t{16});
  ctx.metrics().Reset();
  auto q = ctx.Compile(
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ctx.metrics().shuffle_bytes(), 0u);  // nothing ran yet
  auto r = q.value().run(&ctx.engine());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(ctx.metrics().shuffle_bytes(), 0u);
}

TEST(ApiTest, ReferenceEvalUsesCollectedInputs) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(6, 6, 3, 6).value());
  auto ref = ctx.ReferenceEval("+/[ v | ((i,j),v) <- A ]");
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  auto dist = ctx.EvalScalar("+/[ v | ((i,j),v) <- A ]");
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(ref.value().AsDouble(), dist.value(), 1e-9);
}

TEST(ApiTest, EvalScalarRejectsNonScalar) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(8, 8, 4, 7).value());
  ctx.BindScalar("n", int64_t{8});
  auto r = ctx.EvalScalar("tiled(n,n)[ ((i,j),a) | ((i,j),a) <- A ]");
  EXPECT_FALSE(r.ok());
}

TEST(ApiTest, PlannerOptionsAreHonored) {
  planner::PlannerOptions opts;
  opts.enable_group_by_join = false;
  Sac ctx(runtime::ClusterConfig{2, 1, 2}, opts);
  ctx.Bind("A", ctx.RandomMatrix(12, 12, 4, 8).value());
  ctx.Bind("B", ctx.RandomMatrix(12, 12, 4, 9).value());
  ctx.BindScalar("n", int64_t{12});
  auto q = ctx.Compile(
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().strategy, planner::Strategy::kReduceByKey);
  // Flipping the option at runtime re-enables the 5.4 rule.
  ctx.options().enable_group_by_join = true;
  auto q2 = ctx.Compile(
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2.value().strategy, planner::Strategy::kGroupByJoin);
}

TEST(ApiTest, LocalMatrixBindingsWorkInLocalQueries) {
  Sac ctx;
  la::Tile t(2, 2);
  t.Set(0, 0, 1);
  t.Set(1, 1, 2);
  ctx.BindLocal("M", runtime::Value::TileVal(std::move(t)));
  auto r = ctx.Eval("+/[ v | ((i,j),v) <- M ]");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().value.AsDouble(), 3.0);
}

TEST(ApiTest, MatrixFromLocalAgreesWithToLocal) {
  Sac ctx;
  Rng rng(10);
  la::Tile t(10, 14);
  t.FillRandom(&rng, -1.0, 1.0);
  auto m = ctx.MatrixFromLocal(t, 4).value();
  EXPECT_TRUE(ctx.ToLocal(m).value() == t);
}

}  // namespace
}  // namespace sac
