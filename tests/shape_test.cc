// Tests for the planner's structural analysis of normalized comprehensions.
#include "src/planner/shape.h"

#include <gtest/gtest.h>

#include "src/comp/parser.h"
#include "src/comp/rewrite.h"

namespace sac::planner {
namespace {

QueryShape MustAnalyze(const std::string& src) {
  auto parsed = comp::Parse(src);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto norm = comp::Normalize(parsed.value(),
                              [](const std::string&) { return false; });
  EXPECT_TRUE(norm.ok());
  auto shape = AnalyzeShape(norm.value());
  EXPECT_TRUE(shape.ok()) << shape.status().ToString();
  return shape.ok() ? shape.value() : QueryShape{};
}

TEST(ShapeTest, MatrixMultiplication) {
  QueryShape s = MustAnalyze(
      "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]");
  EXPECT_EQ(s.builder, "tiled");
  ASSERT_EQ(s.builder_args.size(), 2u);
  ASSERT_EQ(s.gens.size(), 2u);
  EXPECT_EQ(s.gens[0].source, "A");
  EXPECT_EQ(s.gens[0].idx, (std::vector<std::string>{"i", "k"}));
  EXPECT_EQ(s.gens[0].val, "a");
  EXPECT_EQ(s.gens[1].source, "B");
  ASSERT_EQ(s.index_eqs.size(), 1u);
  EXPECT_EQ(s.index_eqs[0].first, "kk");
  EXPECT_EQ(s.index_eqs[0].second, "k");
  ASSERT_EQ(s.lets.size(), 1u);
  EXPECT_EQ(s.lets[0].var, "v");
  EXPECT_TRUE(s.has_group_by);
  EXPECT_EQ(s.group_key_vars, (std::vector<std::string>{"i", "j"}));
  EXPECT_TRUE(s.guards.empty());
}

TEST(ShapeTest, IndexVarResolution) {
  QueryShape s = MustAnalyze(
      "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]");
  auto r = s.FindIndexVar("jj");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->gen, 1u);
  EXPECT_EQ(r->pos, 1u);
  EXPECT_FALSE(s.FindIndexVar("zz").has_value());
  // ResolveVar follows equalities.
  auto rv = s.ResolveVar("i");
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->gen, 0u);
}

TEST(ShapeTest, InlineLetsSubstitutesChains) {
  QueryShape s = MustAnalyze(
      "rdd[ (i, z) | (i,a) <- V, let x = a*2.0, let z = x+1.0 ]");
  const comp::ExprPtr inlined = s.InlineLets(s.head_val);
  // z -> x + 1 -> a*2 + 1: no let-bound names remain.
  const std::string str = inlined->ToString();
  EXPECT_EQ(str.find('z'), std::string::npos);
  EXPECT_EQ(str.find('x'), std::string::npos);
  EXPECT_NE(str.find('a'), std::string::npos);
}

TEST(ShapeTest, WildcardValueAllowed) {
  QueryShape s = MustAnalyze("rdd[ (i, 1.0) | ((i,j),_) <- A ]");
  EXPECT_EQ(s.gens[0].val, "");
}

TEST(ShapeTest, NonEqualityGuardsKept) {
  QueryShape s = MustAnalyze(
      "tiled(n,n)[ ((i,j),v) | ((i,j),v) <- A, i+1 < n, v > 0.0 ]");
  EXPECT_EQ(s.index_eqs.size(), 0u);
  EXPECT_EQ(s.guards.size(), 2u);
}

TEST(ShapeTest, RejectsUnsupportedShapes) {
  auto analyze = [](const std::string& src) {
    auto parsed = comp::Parse(src).value();
    auto norm = comp::Normalize(parsed,
                                [](const std::string&) { return false; })
                    .value();
    return AnalyzeShape(norm);
  };
  // Head must be a pair.
  EXPECT_FALSE(analyze("rdd[ v | ((i,j),v) <- A ]").ok());
  // Non-variable value pattern.
  EXPECT_FALSE(analyze("rdd[ (i,1.0) | ((i,j),(v,w)) <- A ]").ok());
  // Generator over an expression.
  EXPECT_FALSE(analyze("rdd[ (i,v) | ((i,j),v) <- A ]").ok() == false &&
               false);  // sanity: the simple case must analyze
  EXPECT_FALSE(analyze("rdd[ (i,v) | (((i,j),k),v) <- A ]").ok());
  // Not a comprehension at all.
  EXPECT_FALSE(AnalyzeShape(comp::Parse("1 + 2").value()).ok());
}

TEST(ShapeTest, GroupBySugarRejectedBeforeNormalize) {
  // AnalyzeShape requires normalized input: raw `group by k : e` fails.
  auto parsed =
      comp::Parse("rdd[ (k, +/v) | (i,v) <- V, group by k : i % 2 ]")
          .value();
  EXPECT_FALSE(AnalyzeShape(parsed).ok());
  // After normalization it succeeds.
  auto norm = comp::Normalize(parsed,
                              [](const std::string&) { return false; })
                  .value();
  EXPECT_TRUE(AnalyzeShape(norm).ok());
}

TEST(ShapeTest, VectorGenerators) {
  QueryShape s = MustAnalyze(
      "tiled(n)[ (i, v+w) | (i,v) <- V, (j,w) <- W, j == i ]");
  ASSERT_EQ(s.gens.size(), 2u);
  EXPECT_EQ(s.gens[0].idx.size(), 1u);
  EXPECT_EQ(s.builder_args.size(), 1u);
}

}  // namespace
}  // namespace sac::planner
