// Robustness: the lexer/parser and evaluator must never crash on
// malformed input -- every failure is a Status. Deterministic
// pseudo-random token soup plus systematic truncations of valid programs.
#include <string>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/comp/eval.h"
#include "src/comp/loops.h"
#include "src/comp/parser.h"
#include "src/comp/rewrite.h"

namespace sac::comp {
namespace {

const char* kFragments[] = {
    "[", "]", "(", ")", ",", "|", "<-", "group", "by", "let", "=",
    "+/", "min/", "i", "j", "v", "M", "1", "2.5", "+", "*", "==",
    "until", "to", "tiled", "matrix", "_", "if", "else", "&&", "%",
    ":", ";", "{", "}", "\"str\"", "#c\n",
};

TEST(FuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(2026);
  int parsed_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string src;
    const int len = 1 + static_cast<int>(rng.NextBelow(24));
    for (int i = 0; i < len; ++i) {
      src += kFragments[rng.NextBelow(std::size(kFragments))];
      src += ' ';
    }
    auto r = Parse(src);
    if (r.ok()) {
      ++parsed_ok;
      // Whatever parsed must also print, normalize and (attempt to)
      // evaluate without crashing.
      const std::string printed = r.value()->ToString();
      EXPECT_FALSE(printed.empty());
      auto norm = Normalize(r.value(),
                            [](const std::string&) { return false; });
      if (norm.ok()) {
        Evaluator ev;
        (void)ev.Eval(norm.value());  // any Status is fine
      }
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    }
  }
  // Sanity: the soup occasionally forms valid expressions.
  EXPECT_GT(parsed_ok, 0);
}

TEST(FuzzTest, TruncationsOfValidProgramFailCleanly) {
  const std::string program =
      "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- M, ((kk,j),b) <- N,"
      " kk == k, let v = a*b, group by (i,j) ]";
  ASSERT_TRUE(Parse(program).ok());
  for (size_t cut = 0; cut < program.size(); ++cut) {
    auto r = Parse(program.substr(0, cut));
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << cut;
    }
  }
}

TEST(FuzzTest, RandomByteStringsNeverCrashLexer) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string src;
    const int len = static_cast<int>(rng.NextBelow(40));
    for (int i = 0; i < len; ++i) {
      src += static_cast<char>(32 + rng.NextBelow(95));  // printable ASCII
    }
    (void)Parse(src);  // Status either way; must not crash
  }
}

TEST(FuzzTest, LoopProgramTruncations) {
  const std::string program =
      "for i = 0, n-1 do for k = 0, n-1 do for j = 0, n-1 do"
      "  C[i,j] += A[i,k] * B[k,j];";
  ASSERT_TRUE(ParseLoopProgram(program).ok());
  for (size_t cut = 0; cut < program.size(); cut += 3) {
    auto r = ParseLoopProgram(program.substr(0, cut));
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << cut;
    }
  }
}

}  // namespace
}  // namespace sac::comp
