// Tests for the static analyzer (src/analysis/): golden located
// diagnostics from the comprehension checker, each plan-lint rule firing
// and staying silent, the DAG invariant verifier catching hand-corrupted
// plans, and lineage verification in the engine.
#include "src/analysis/analysis.h"

#include <gtest/gtest.h>

#include "src/api/sac.h"
#include "src/planner/plan.h"
#include "src/runtime/engine.h"

namespace sac::analysis {
namespace {

using planner::Binding;
using planner::Bindings;
using planner::PlanBuilder;
using planner::PlanNode;
using planner::PlanNodePtr;

/// Metadata-only bindings (null datasets): AnalyzeQuery never runs the
/// plan, so shapes are all it needs -- same trick the sac_lint CLI uses.
Binding Matrix(int64_t rows, int64_t cols, int64_t block = 64) {
  return Binding::Tiled(storage::TiledMatrix{rows, cols, block, nullptr});
}
Binding Vector(int64_t size, int64_t block = 64) {
  return Binding::Vector(storage::BlockVector{size, block, nullptr});
}

Bindings MatmulBinds(int64_t b_rows) {
  Bindings binds;
  binds.emplace("A", Matrix(256, 192));
  binds.emplace("B", Matrix(b_rows, 128));
  binds.emplace("n", Binding::Scalar(runtime::Value::Int(256)));
  binds.emplace("m", Binding::Scalar(runtime::Value::Int(128)));
  return binds;
}

AnalysisReport Analyze(const std::string& src, const Bindings& binds) {
  auto report = AnalyzeQuery(src, binds);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.value() : AnalysisReport{};
}

std::string Rendered(const AnalysisReport& r) {
  return RenderAll(r.diagnostics, "q.sac");
}

// ---------------------------------------------------------------------------
// Comprehension checker: golden file:line:col diagnostics
// ---------------------------------------------------------------------------

TEST(AnalysisCheck, CleanMatmulHasNoDiagnostics) {
  AnalysisReport r = Analyze(
      "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b, group by (i,j) ]",
      MatmulBinds(192));
  EXPECT_TRUE(r.diagnostics.empty()) << Rendered(r);
  EXPECT_FALSE(r.strategy.empty());
  EXPECT_FALSE(r.plan_tree.empty());
}

TEST(AnalysisCheck, InnerDimensionMismatchIsLocatedE004) {
  // B has 200 rows but A has 192 columns; `kk == k` (line 2, col 13 of
  // the query text) equates them.
  AnalysisReport r = Analyze(
      "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,\n"
      "            kk == k, let v = a*b, group by (i,j) ]",
      MatmulBinds(200));
  ASSERT_TRUE(r.has_errors());
  EXPECT_EQ(Rendered(r),
            "q.sac:2:13: error [SAC-E004] dimension mismatch: 'kk' ranges "
            "over the 200 rows of 'B' but 'k' ranges over the 192 columns "
            "of 'A'\n");
  // Planning is skipped after checker errors.
  EXPECT_TRUE(r.strategy.empty());
}

TEST(AnalysisCheck, UnboundVariableIsLocatedE001) {
  AnalysisReport r = Analyze(
      "tiled(n,n)[ ((i,j), a + c) | ((i,j),a) <- A ]",
      MatmulBinds(192));
  ASSERT_EQ(r.diagnostics.size(), 1u) << Rendered(r);
  EXPECT_EQ(r.diagnostics[0].code, "SAC-E001");
  EXPECT_EQ(Rendered(r),
            "q.sac:1:25: error [SAC-E001] unbound variable 'c'\n");
}

TEST(AnalysisCheck, GeneratorOverScalarIsE002) {
  AnalysisReport r = Analyze(
      "tiled(n,n)[ ((i,j), x) | ((i,j),x) <- n ]", MatmulBinds(192));
  ASSERT_EQ(r.diagnostics.size(), 1u) << Rendered(r);
  EXPECT_EQ(r.diagnostics[0].code, "SAC-E002");
  EXPECT_EQ(r.diagnostics[0].span.begin.line, 1);
}

TEST(AnalysisCheck, IndexArityMismatchIsE003) {
  // A matrix generator destructuring its (row, column) index into three
  // components.
  Bindings binds = MatmulBinds(192);
  AnalysisReport r = Analyze(
      "tiled(n,n)[ ((i,j), v) | ((i,j,l),v) <- A ]", binds);
  ASSERT_FALSE(r.diagnostics.empty()) << Rendered(r);
  EXPECT_EQ(r.diagnostics[0].code, "SAC-E003");

  // Subscript side: a matrix indexed with one subscript.
  AnalysisReport r2 = Analyze(
      "vector(n)[ (i, A[i]) | (i,v) <- x ]",
      [] {
        Bindings b = MatmulBinds(192);
        b.emplace("x", Vector(256));
        return b;
      }());
  ASSERT_FALSE(r2.diagnostics.empty()) << Rendered(r2);
  EXPECT_EQ(r2.diagnostics[0].code, "SAC-E003");
}

TEST(AnalysisCheck, MatrixUsedAsScalarIsE005) {
  AnalysisReport r = Analyze(
      "tiled(n,n)[ ((i,j), A + a) | ((i,j),a) <- A ]", MatmulBinds(192));
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].code, "SAC-E005");
  EXPECT_NE(r.diagnostics[0].message.find("'A'"), std::string::npos);
}

TEST(AnalysisCheck, ParseErrorIsLocatedE000) {
  AnalysisReport r = Analyze("tiled(n,n)[ ((i,j), a ", MatmulBinds(192));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, "SAC-E000");
  EXPECT_TRUE(r.diagnostics[0].span.IsSet());
}

TEST(AnalysisCheck, DiagnosticsSortByPositionErrorsFirst) {
  std::vector<Diagnostic> ds;
  ds.push_back(Warning("SAC-W01", "later", comp::Span{{2, 1}, {2, 2}}));
  ds.push_back(Error("SAC-E001", "earlier", comp::Span{{1, 5}, {1, 6}}));
  ds.push_back(Warning("SAC-W02", "unpositioned", comp::Span{}));
  SortDiagnostics(&ds);
  EXPECT_EQ(ds[0].code, "SAC-E001");
  EXPECT_EQ(ds[1].code, "SAC-W01");
  EXPECT_EQ(ds[2].code, "SAC-W02");
  EXPECT_EQ(ds[2].Render("f"), "f: warning [SAC-W02] unpositioned");
}

// ---------------------------------------------------------------------------
// Plan lint rules: each fires on a hand-built graph and stays silent on
// the corrected one
// ---------------------------------------------------------------------------

std::vector<std::string> Codes(const std::vector<Diagnostic>& ds) {
  std::vector<std::string> out;
  for (const auto& d : ds) out.push_back(d.code);
  return out;
}

TEST(PlanLint, W01FiresOnFoldedGroupByKey) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr grouped =
      pb.Shuffle(PlanNode::Op::kGroupByKey, "groupTiles", {src}, 2);
  PlanNodePtr fold = pb.Narrow(PlanNode::Op::kMap, "sumGroups", grouped, 2);
  fold->folds_group = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{fold, pb.TakeNodes()}, &ds);
  EXPECT_EQ(Codes(ds), std::vector<std::string>{"SAC-W01"});
}

TEST(PlanLint, W01SilentWhenGroupsAreNotFolds) {
  // Structural consumers (e.g. tile assembly in 5.2) are fine.
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr grouped =
      pb.Shuffle(PlanNode::Op::kGroupByKey, "groupTiles", {src}, 2);
  PlanNodePtr assemble =
      pb.Narrow(PlanNode::Op::kMap, "assembleTiles", grouped, 2);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{assemble, pb.TakeNodes()}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W02FiresOnUncachedReuseInLoop) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "normalize", src, 2);
  PlanNodePtr c1 = pb.Narrow(PlanNode::Op::kMap, "left", mid, 2);
  PlanNodePtr c2 = pb.Narrow(PlanNode::Op::kMap, "right", mid, 2);
  PlanNodePtr root = pb.Collect({c1, c2});
  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{root, pb.TakeNodes()}, &ds);
  EXPECT_EQ(Codes(ds), std::vector<std::string>{"SAC-W02"});
}

TEST(PlanLint, W02SilentOutsideLoopsOrWhenCached) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "normalize", src, 2);
  PlanNodePtr c1 = pb.Narrow(PlanNode::Op::kMap, "left", mid, 2);
  PlanNodePtr c2 = pb.Narrow(PlanNode::Op::kMap, "right", mid, 2);
  PlanNodePtr root = pb.Collect({c1, c2});
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{root, pb.nodes()}, &ds);  // not in a loop
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");

  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  mid->cached = true;  // cached: recompute is free, W02 stays silent
  ds.clear();
  LintPlan(PlanGraph{root, pb.TakeNodes()}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W02QuantifiesRecomputeBytesFromBindings) {
  // With bindings the shape pass sizes the reused dataset: a 512x512
  // matrix (64 tiles, ~2 MiB serialized) rebuilt once per extra consumer.
  Bindings binds;
  binds.emplace("A", Matrix(512, 512));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "normalize", src, 2);
  PlanNodePtr c1 = pb.Narrow(PlanNode::Op::kMap, "left", mid, 2);
  PlanNodePtr c2 = pb.Narrow(PlanNode::Op::kMap, "right", mid, 2);
  PlanNodePtr root = pb.Collect({c1, c2});
  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{root, pb.TakeNodes(), &binds, 0}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W02"});
  EXPECT_GT(ds[0].estimated_bytes, 1 << 20);
  EXPECT_NE(ds[0].message.find("MiB per iteration"), std::string::npos)
      << ds[0].message;
}

TEST(PlanLint, W02SilentWhenSizedRecomputeIsImmaterial) {
  // Same pattern but the dataset is one 32 KiB tile: sized and below the
  // materiality threshold, so the finding is suppressed.
  Bindings binds;
  binds.emplace("A", Matrix(64, 64));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "normalize", src, 2);
  PlanNodePtr c1 = pb.Narrow(PlanNode::Op::kMap, "left", mid, 2);
  PlanNodePtr c2 = pb.Narrow(PlanNode::Op::kMap, "right", mid, 2);
  PlanNodePtr root = pb.Collect({c1, c2});
  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{root, pb.TakeNodes(), &binds, 0}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W03FiresOnRedundantRepartition) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr reduced =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {src}, 2, 8);
  PlanNodePtr again =
      pb.Shuffle(PlanNode::Op::kPartitionBy, "repartition", {reduced}, 2, 8);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{again, pb.TakeNodes()}, &ds);
  EXPECT_EQ(Codes(ds), std::vector<std::string>{"SAC-W03"});
}

TEST(PlanLint, W03SilentWhenPartitioningActuallyChanges) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr reduced =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {src}, 2, 8);
  // Different partition count: the shuffle does real work.
  PlanNodePtr widen =
      pb.Shuffle(PlanNode::Op::kPartitionBy, "repartition", {reduced}, 2, 16);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{widen, pb.TakeNodes()}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W03FiresWhenDefaultCountResolvesToProducerCount) {
  // hash(8) -> hash(default) is redundant when the engine default is 8:
  // the resolved counts compare equal (the false positive the resolved
  // comparison fixes -- with Matches() the -1 never equalled 8).
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr reduced =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {src}, 2, 8);
  PlanNodePtr again =
      pb.Shuffle(PlanNode::Op::kPartitionBy, "repartition", {reduced}, 2);
  PlanGraph g{again, pb.TakeNodes()};
  g.default_parallelism = 8;
  std::vector<Diagnostic> ds;
  LintPlan(g, &ds);
  EXPECT_EQ(Codes(ds), std::vector<std::string>{"SAC-W03"});

  // Same plan on a cluster whose default is 16: the repartition is real.
  g.default_parallelism = 16;
  ds.clear();
  LintPlan(g, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W04FiresOnDeadDataset) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr live = pb.Narrow(PlanNode::Op::kMap, "live", src, 2);
  PlanNodePtr dead = pb.Narrow(PlanNode::Op::kMap, "dead", src, 2);
  (void)dead;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{live, pb.TakeNodes()}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W04"});
  EXPECT_NE(ds[0].message.find("dead"), std::string::npos);
}

TEST(PlanLint, W04SilentWhenEverythingIsReachable) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr live = pb.Narrow(PlanNode::Op::kMap, "live", src, 2);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{live, pb.TakeNodes()}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W05FiresOnChainedLoopShuffles) {
  // shuffle -> map -> shuffle, all re-run every iteration, nothing cached:
  // losing a partition of the second shuffle replays the first one too.
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr first =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "partial", {src}, 2, 8);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", first, 2);
  PlanNodePtr second =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "combine", {mid}, 2, 16);
  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{second, pb.TakeNodes()}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W05"});
  EXPECT_NE(ds[0].message.find("checkpoint"), std::string::npos);
}

TEST(PlanLint, W05SilentOutsideLoopsOrWhenChainIsCut) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr first =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "partial", {src}, 2, 8);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", first, 2);
  PlanNodePtr second =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "combine", {mid}, 2, 16);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{second, pb.nodes()}, &ds);  // not in a loop
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");

  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  mid->cached = true;  // materialized intermediate cuts the replay chain
  ds.clear();
  LintPlan(PlanGraph{second, pb.TakeNodes()}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W05QuantifiesReplayBytesFromBindings) {
  // With bindings the first shuffle is sized (~2 MiB of 512x512 tiles
  // re-moved per replay) and the figure lands in the message.
  Bindings binds;
  binds.emplace("A", Matrix(512, 512));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr first =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "partial", {src}, 2, 8);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", first, 2);
  PlanNodePtr second =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "combine", {mid}, 2, 16);
  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{second, pb.TakeNodes(), &binds, 0}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W05"});
  EXPECT_GT(ds[0].estimated_bytes, 1 << 20);
  EXPECT_NE(ds[0].message.find("re-shuffled per replay"), std::string::npos)
      << ds[0].message;
}

TEST(PlanLint, W05SilentWhenSizedReplayIsImmaterial) {
  // Nine tiles (~300 KiB) through the chain: sized, below materiality,
  // silent -- the unsized variant of this exact plan fires (test above).
  Bindings binds;
  binds.emplace("A", Matrix(192, 192));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr first =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "partial", {src}, 2, 8);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", first, 2);
  PlanNodePtr second =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "combine", {mid}, 2, 16);
  for (const PlanNodePtr& n : pb.nodes()) n->in_loop = true;
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{second, pb.TakeNodes(), &binds, 0}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W06FiresWhenResidentSetExceedsBudget) {
  // A 512x512 dense source is 2 MiB; source + two derived nodes estimate
  // ~6 MiB resident, far over a 1 MiB budget, and nothing is cached.
  Bindings binds;
  binds.emplace("A", Matrix(512, 512));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", src, 2);
  PlanNodePtr root = pb.Narrow(PlanNode::Op::kMap, "shift", mid, 2);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{root, pb.TakeNodes(), &binds, 1 << 20}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W06"});
  EXPECT_NE(ds[0].message.find("memory budget"), std::string::npos);
  EXPECT_GT(ds[0].estimated_bytes, 1 << 20);  // the estimated resident set
}

TEST(PlanLint, W06SilentWhenOvershootIsImmaterial) {
  // 64x64 source: ~96 KiB resident against a 64 KiB budget. Over budget,
  // but the overshoot is far below the materiality threshold.
  Bindings binds;
  binds.emplace("A", Matrix(64, 64));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", src, 2);
  PlanNodePtr root = pb.Narrow(PlanNode::Op::kMap, "shift", mid, 2);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{root, pb.TakeNodes(), &binds, 64 << 10}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W06SilentWithoutBudgetOrWithACacheCut) {
  Bindings binds;
  binds.emplace("A", Matrix(512, 512));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mid = pb.Narrow(PlanNode::Op::kMap, "scale", src, 2);
  PlanNodePtr root = pb.Narrow(PlanNode::Op::kMap, "shift", mid, 2);

  std::vector<Diagnostic> ds;
  // No budget configured: out-of-core analysis is off.
  LintPlan(PlanGraph{root, pb.nodes(), &binds, 0}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");

  // Roomy budget: the estimate fits.
  LintPlan(PlanGraph{root, pb.nodes(), &binds, 64 << 20}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");

  // Tight budget but a cached intermediate cuts the resident set.
  mid->cached = true;
  LintPlan(PlanGraph{root, pb.TakeNodes(), &binds, 1 << 20}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, W07FiresWhenPinnedStrategyIsSuboptimal) {
  // At 1024^2 the cost model estimates the 5.3 join + reduceByKey plan
  // well under the 5.4 SUMMA plan (the cogroup replicates ~2g^3 panels
  // vs the join's 2g^2 tiles). With auto_strategy pinned off the planner
  // keeps 5.4 and the lint quantifies what that leaves on the table.
  Bindings binds;
  binds.emplace("A", Matrix(1024, 1024));
  binds.emplace("B", Matrix(1024, 1024));
  binds.emplace("n", Binding::Scalar(runtime::Value::Int(1024)));
  binds.emplace("m", Binding::Scalar(runtime::Value::Int(1024)));
  planner::PlannerOptions opts;
  opts.auto_strategy = false;
  auto report = AnalyzeQuery(
      "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b, group by (i,j) ]",
      binds, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const AnalysisReport& r = report.value();
  EXPECT_EQ(r.strategy, "GroupByJoin(5.4)");
  ASSERT_EQ(Codes(r.diagnostics), std::vector<std::string>{"SAC-W07"})
      << Rendered(r);
  EXPECT_GT(r.diagnostics[0].estimated_bytes, 1 << 20);
  EXPECT_NE(r.diagnostics[0].message.find("5.3 join + reduceByKey"),
            std::string::npos)
      << r.diagnostics[0].message;
}

TEST(PlanLint, W07SilentWhenAutoStrategyPicksTheCheaperPlan) {
  // Same query and extents with cost-based planning on: the planner takes
  // the 5.3 plan the model prefers, so there is nothing to warn about.
  Bindings binds;
  binds.emplace("A", Matrix(1024, 1024));
  binds.emplace("B", Matrix(1024, 1024));
  binds.emplace("n", Binding::Scalar(runtime::Value::Int(1024)));
  binds.emplace("m", Binding::Scalar(runtime::Value::Int(1024)));
  AnalysisReport r = Analyze(
      "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b, group by (i,j) ]",
      binds);
  EXPECT_EQ(r.strategy, "ReduceByKey(5.3)");
  EXPECT_NE(r.explanation.find("auto: cost model"), std::string::npos)
      << r.explanation;
  EXPECT_TRUE(r.diagnostics.empty()) << Rendered(r);
}

TEST(PlanLint, W08FiresOnMostlyEmptyPartitions) {
  // 4 output tiles reduced into 64 partitions: ~60 stay empty.
  Bindings binds;
  binds.emplace("A", Matrix(128, 128));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr reduced =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {src}, 2, 64);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{reduced, pb.TakeNodes(), &binds, 0}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W08"});
  EXPECT_NE(ds[0].message.find("stay empty"), std::string::npos)
      << ds[0].message;
}

TEST(PlanLint, W08FiresWhenCoresOutnumberPartitions) {
  // 1024 tiles squeezed into 2 partitions on a default 4-core cluster.
  Bindings binds;
  binds.emplace("A", Matrix(2048, 2048));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr reduced =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {src}, 2, 2);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{reduced, pb.TakeNodes(), &binds, 0}, &ds);
  ASSERT_EQ(Codes(ds), std::vector<std::string>{"SAC-W08"});
  EXPECT_NE(ds[0].message.find("idle"), std::string::npos) << ds[0].message;
}

TEST(PlanLint, W08SilentWhenPartitionCountIsReasonable) {
  Bindings binds;
  binds.emplace("A", Matrix(128, 128));
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr reduced =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "reduceTiles", {src}, 2, 8);
  std::vector<Diagnostic> ds;
  LintPlan(PlanGraph{reduced, pb.TakeNodes(), &binds, 0}, &ds);
  EXPECT_TRUE(ds.empty()) << RenderAll(ds, "plan");
}

TEST(PlanLint, RegistryHasAllEightRules) {
  std::vector<std::string> codes;
  for (const LintRule* r : LintRules()) codes.push_back(r->code());
  EXPECT_EQ(codes.size(), 8u);
  for (const char* want :
       {"SAC-W01", "SAC-W02", "SAC-W03", "SAC-W04", "SAC-W05", "SAC-W06",
        "SAC-W07", "SAC-W08"}) {
    EXPECT_NE(std::find(codes.begin(), codes.end(), want), codes.end())
        << want << " not registered";
  }
}

TEST(PlanLint, RealCompiledPlansAreLintClean) {
  // Every strategy's emitted plan must verify and produce zero warnings.
  Bindings binds = MatmulBinds(192);
  binds.emplace("x", Vector(192));
  binds.emplace("A2", Matrix(256, 128));
  binds.emplace("B2", Matrix(256, 128));
  const char* queries[] = {
      // 5.4 / 5.3 matmul
      "tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b, group by (i,j) ]",
      // 5.3 with a vector side
      "vector(n)[ (i, +/v) | ((i,k),a) <- A, (kk,b) <- x, kk == k, "
      "let v = a*b, group by i ]",
      // 5.1 tiling preserving
      "tiled(n,m)[ ((i,j), a+b) | ((i,j),a) <- A2, ((i,j),b) <- B2 ]",
      // total aggregation
      "+/[ v | ((i,j),v) <- A ]",
  };
  for (const char* q : queries) {
    AnalysisReport r = Analyze(q, binds);
    EXPECT_TRUE(r.diagnostics.empty())
        << q << "\n" << Rendered(r) << r.plan_tree;
    EXPECT_FALSE(r.strategy.empty()) << q;
  }
}

// ---------------------------------------------------------------------------
// DAG invariant verifier on hand-corrupted plans
// ---------------------------------------------------------------------------

TEST(PlanVerify, EmptyGraphIsOk) {
  EXPECT_TRUE(VerifyPlan(PlanGraph{}).ok());
}

TEST(PlanVerify, NodesWithoutRootFail) {
  PlanBuilder pb;
  pb.Source("A", 2);
  EXPECT_FALSE(VerifyPlan(PlanGraph{nullptr, pb.TakeNodes()}).ok());
}

TEST(PlanVerify, WellFormedPlanPasses) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mapped = pb.Narrow(PlanNode::Op::kMap, "m", src, 2);
  PlanNodePtr red =
      pb.Shuffle(PlanNode::Op::kReduceByKey, "r", {mapped}, 2);
  EXPECT_TRUE(VerifyPlan(PlanGraph{red, pb.TakeNodes()}).ok());
}

TEST(PlanVerify, CatchesCycle) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr a = pb.Narrow(PlanNode::Op::kMap, "a", src, 2);
  PlanNodePtr b = pb.Narrow(PlanNode::Op::kMap, "b", a, 2);
  a->inputs[0] = b;  // corrupt: a <-> b
  Status s = VerifyPlan(PlanGraph{b, pb.TakeNodes()});
  a->inputs.clear();  // break the shared_ptr cycle so the nodes free
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos) << s.ToString();
}

TEST(PlanVerify, CatchesJoinWithOneInput) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr join = pb.Shuffle(PlanNode::Op::kJoin, "j", {src}, 2);
  EXPECT_FALSE(VerifyPlan(PlanGraph{join, pb.TakeNodes()}).ok());
}

TEST(PlanVerify, CatchesKeyArityMismatchAcrossShuffle) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 1);
  PlanNodePtr red = pb.Shuffle(PlanNode::Op::kReduceByKey, "r", {src}, 2);
  Status s = VerifyPlan(PlanGraph{red, pb.TakeNodes()});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("key"), std::string::npos) << s.ToString();
}

TEST(PlanVerify, CatchesReachableNodeMissingFromRecord) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr mapped = pb.Narrow(PlanNode::Op::kMap, "m", src, 2);
  std::vector<PlanNodePtr> record = pb.TakeNodes();
  record.erase(record.begin());  // drop the source from the record
  EXPECT_FALSE(VerifyPlan(PlanGraph{mapped, record}).ok());
}

TEST(PlanVerify, CatchesPreservesPartitioningOnShuffle) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr red = pb.Shuffle(PlanNode::Op::kReduceByKey, "r", {src}, 2);
  red->preserves_partitioning = true;  // nonsense: shuffles re-key
  EXPECT_FALSE(VerifyPlan(PlanGraph{red, pb.TakeNodes()}).ok());
}

TEST(PlanVerify, CatchesFoldsGroupWithoutGroupInput) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("A", 2);
  PlanNodePtr fold = pb.Narrow(PlanNode::Op::kMap, "fold", src, 2);
  fold->folds_group = true;  // no groupByKey/cogroup upstream
  EXPECT_FALSE(VerifyPlan(PlanGraph{fold, pb.TakeNodes()}).ok());
}

TEST(PlanVerify, CatchesSourceWithoutName) {
  PlanBuilder pb;
  PlanNodePtr src = pb.Source("", 2);
  EXPECT_FALSE(VerifyPlan(PlanGraph{src, pb.TakeNodes()}).ok());
}

// ---------------------------------------------------------------------------
// API integration + engine lineage verification
// ---------------------------------------------------------------------------

TEST(AnalysisApi, ExplainRendersDiagnosticsAndPlan) {
  Sac ctx;
  auto a = ctx.RandomMatrix(96, 96, 32, 1);
  ASSERT_TRUE(a.ok());
  ctx.Bind("A", a.value());
  ctx.Bind("B", ctx.RandomMatrix(96, 96, 32, 2).value());
  ctx.BindScalar("n", int64_t{96});

  auto clean = ctx.Explain(
      "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(clean.ok());
  EXPECT_NE(clean.value().find("strategy:"), std::string::npos);
  EXPECT_NE(clean.value().find("plan:"), std::string::npos);

  auto bad = ctx.Analyze("tiled(n,n)[ ((i,j), q) | ((i,j),a) <- A ]");
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad.value().has_errors());
  EXPECT_EQ(bad.value().diagnostics[0].code, "SAC-E001");
}

TEST(AnalysisApi, EvalStillWorksWithVerificationOn) {
  // Eval now runs VerifyPlan before and VerifyLineage after execution;
  // a real query must still go through unchanged.
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(64, 64, 32, 1).value());
  ctx.Bind("B", ctx.RandomMatrix(64, 64, 32, 2).value());
  ctx.BindScalar("n", int64_t{64});
  auto c = ctx.EvalTiled(
      "tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
      "kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c.value().rows, 64);
}

TEST(EngineLineage, VerifiesHealthyPipelinesAndRejectsNull) {
  runtime::Engine eng(runtime::ClusterConfig{2, 2, 4});
  EXPECT_FALSE(eng.VerifyLineage(nullptr).ok());

  runtime::ValueVec rows;
  for (int64_t i = 0; i < 8; ++i) {
    rows.push_back(runtime::VPair(runtime::VInt(i % 3), runtime::VInt(i)));
  }
  runtime::Dataset src = eng.Parallelize(std::move(rows), 4);
  EXPECT_TRUE(eng.VerifyLineage(src).ok());

  auto mapped = eng.Map(src, [](const runtime::Value& v) { return v; });
  ASSERT_TRUE(mapped.ok());
  auto reduced = eng.ReduceByKey(
      mapped.value(),
      [](const runtime::Value& a, const runtime::Value& b) {
        return runtime::VInt(a.AsInt() + b.AsInt());
      });
  ASSERT_TRUE(reduced.ok());
  EXPECT_TRUE(eng.VerifyLineage(reduced.value()).ok());
}

}  // namespace
}  // namespace sac::analysis
