// Tests for the expression-to-closure compiler (the generated-code layer).
#include "src/exec/scalar_fn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/comp/parser.h"
#include "src/exec/scalar_program.h"

namespace sac::exec {
namespace {

comp::ExprPtr P(const std::string& src) {
  auto r = comp::Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(ScalarFnTest, ArithmeticAndConstants) {
  ConstEnv consts{{"gamma", 0.5}};
  auto f = CompileScalarFn(P("a + gamma * (2.0*b - a)"), {"a", "b"}, consts);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  const double args[2] = {4.0, 10.0};
  EXPECT_DOUBLE_EQ(f.value()(args), 4.0 + 0.5 * (20.0 - 4.0));
}

TEST(ScalarFnTest, MathBuiltins) {
  ConstEnv consts;
  const double args[1] = {4.0};
  EXPECT_DOUBLE_EQ(CompileScalarFn(P("sqrt(x)"), {"x"}, consts).value()(args),
                   2.0);
  EXPECT_DOUBLE_EQ(CompileScalarFn(P("abs(-x)"), {"x"}, consts).value()(args),
                   4.0);
  EXPECT_DOUBLE_EQ(
      CompileScalarFn(P("pow(x, 2.0)"), {"x"}, consts).value()(args), 16.0);
  EXPECT_DOUBLE_EQ(
      CompileScalarFn(P("min(x, 1.5)"), {"x"}, consts).value()(args), 1.5);
  EXPECT_DOUBLE_EQ(
      CompileScalarFn(P("max(x, 7.0)"), {"x"}, consts).value()(args), 7.0);
  EXPECT_NEAR(CompileScalarFn(P("exp(log(x))"), {"x"}, consts).value()(args),
              4.0, 1e-12);
}

TEST(ScalarFnTest, ConditionalExpression) {
  ConstEnv consts;
  auto f = CompileScalarFn(P("if (a > 0.0 && a < 10.0) a else 0.0 - a"),
                           {"a"}, consts);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  double args[1] = {3.0};
  EXPECT_DOUBLE_EQ(f.value()(args), 3.0);
  args[0] = -3.0;
  EXPECT_DOUBLE_EQ(f.value()(args), 3.0);
  args[0] = 30.0;
  EXPECT_DOUBLE_EQ(f.value()(args), -30.0);
}

TEST(ScalarFnTest, FmodForDoubles) {
  ConstEnv consts;
  auto f = CompileScalarFn(P("a % 3.0"), {"a"}, consts);
  ASSERT_TRUE(f.ok());
  const double args[1] = {7.5};
  EXPECT_DOUBLE_EQ(f.value()(args), std::fmod(7.5, 3.0));
}

TEST(ScalarFnTest, RejectsUnboundAndUnsupported) {
  ConstEnv consts;
  EXPECT_FALSE(CompileScalarFn(P("a + nope"), {"a"}, consts).ok());
  EXPECT_FALSE(CompileScalarFn(P("+/a"), {"a"}, consts).ok());
  EXPECT_FALSE(CompileScalarFn(P("[ x | x <- a ]"), {"a"}, consts).ok());
  EXPECT_FALSE(CompileScalarFn(P("unknown(a)"), {"a"}, consts).ok());
  // Errors carry PlanError so planners can fall back.
  EXPECT_EQ(CompileScalarFn(P("a + nope"), {"a"}, consts).status().code(),
            StatusCode::kPlanError);
}

TEST(IntFnTest, TrueIntegerSemantics) {
  ConstEnv consts{{"n", 10.0}};
  const int64_t args[2] = {7, 3};
  EXPECT_EQ(CompileIntFn(P("(i+1) % n"), {"i", "j"}, consts).value()(args), 8);
  EXPECT_EQ(CompileIntFn(P("i / 2"), {"i", "j"}, consts).value()(args), 3);
  EXPECT_EQ(CompileIntFn(P("i * n + j"), {"i", "j"}, consts).value()(args),
            73);
  EXPECT_EQ(CompileIntFn(P("-j"), {"i", "j"}, consts).value()(args), -3);
  EXPECT_EQ(CompileIntFn(P("min(i, j)"), {"i", "j"}, consts).value()(args),
            3);
}

TEST(IntFnTest, DivisionByZeroYieldsZeroNotCrash) {
  ConstEnv consts;
  const int64_t args[1] = {5};
  EXPECT_EQ(CompileIntFn(P("i / 0"), {"i"}, consts).value()(args), 0);
  EXPECT_EQ(CompileIntFn(P("i % 0"), {"i"}, consts).value()(args), 0);
}

TEST(IntFnTest, RejectsNonIntegralConstants) {
  ConstEnv consts{{"x", 2.5}};
  EXPECT_FALSE(CompileIntFn(P("i + x"), {"i"}, consts).ok());
}

TEST(IntPredTest, ComparisonsAndLogic) {
  ConstEnv consts{{"n", 8.0}};
  auto p = CompileIntPred(P("i >= 0 && i < n || i == 100"), {"i"}, consts);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  int64_t args[1] = {5};
  EXPECT_TRUE(p.value()(args));
  args[0] = 8;
  EXPECT_FALSE(p.value()(args));
  args[0] = 100;
  EXPECT_TRUE(p.value()(args));
  args[0] = -1;
  EXPECT_FALSE(p.value()(args));
}

TEST(IntPredTest, NegationAndLiterals) {
  ConstEnv consts;
  int64_t args[1] = {1};
  EXPECT_TRUE(CompileIntPred(P("!(i == 0)"), {"i"}, consts).value()(args));
  EXPECT_TRUE(CompileIntPred(P("true"), {"i"}, consts).value()(args));
  EXPECT_FALSE(CompileIntPred(P("false"), {"i"}, consts).value()(args));
}

// ---- flat postfix programs (src/exec/scalar_program.h) ------------------
//
// CompileScalarFn now lowers to a ScalarProgram when the expression fits
// the postfix instruction set; these pin the program evaluator against
// the closure-tree semantics above.

TEST(ScalarProgramTest, CompilesArithmeticToFlatProgram) {
  ConstEnv consts{{"gamma", 0.5}};
  auto p = ScalarProgram::Compile(P("a + gamma * (2.0*b - a)"), {"a", "b"},
                                  consts);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_GT(p.value().size(), 0u);
  const double args[2] = {4.0, 10.0};
  EXPECT_DOUBLE_EQ(p.value().Eval(args), 4.0 + 0.5 * (20.0 - 4.0));
}

TEST(ScalarProgramTest, BuiltinsAndConditional) {
  ConstEnv consts;
  double args[1] = {4.0};
  EXPECT_DOUBLE_EQ(
      ScalarProgram::Compile(P("sqrt(x) + abs(-x)"), {"x"}, consts)
          .value()
          .Eval(args),
      6.0);
  auto p = ScalarProgram::Compile(P("if (a > 0.0 && a < 10.0) a else 0.0 - a"),
                                  {"a"}, consts);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  args[0] = 3.0;
  EXPECT_DOUBLE_EQ(p.value().Eval(args), 3.0);
  args[0] = -3.0;
  EXPECT_DOUBLE_EQ(p.value().Eval(args), 3.0);
  args[0] = 30.0;
  EXPECT_DOUBLE_EQ(p.value().Eval(args), -30.0);
}

TEST(ScalarProgramTest, MatchesClosureTreeOnFig4cUpdate) {
  // The factorization update shape from fig4c: p + gamma*g with bound
  // scalar coefficients, composed with a clamp.
  ConstEnv consts{{"__gl", 0.002}, {"__tg", -0.004}};
  const auto src = "max(min(__gl*p + __tg*g, 5.0), 0.0 - 5.0)";
  auto prog = ScalarProgram::Compile(P(src), {"p", "g"}, consts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto fn = CompileScalarFn(P(src), {"p", "g"}, consts);
  ASSERT_TRUE(fn.ok());
  for (double pv : {-3.0, 0.0, 1.5, 4000.0}) {
    for (double gv : {-2.0, 0.25, 100.0}) {
      const double args[2] = {pv, gv};
      EXPECT_DOUBLE_EQ(prog.value().Eval(args), fn.value()(args));
    }
  }
}

TEST(ScalarProgramTest, RejectsUnboundVarAndComprehension) {
  ConstEnv consts;
  EXPECT_FALSE(ScalarProgram::Compile(P("a + nope"), {"a"}, consts).ok());
  EXPECT_FALSE(
      ScalarProgram::Compile(P("[ x | x <- a ]"), {"a"}, consts).ok());
}

TEST(ScalarProgramTest, DeepNestingHitsStackGuardNotUb) {
  // Build an expression whose postfix evaluation needs > kMaxStack slots:
  // right-nested additions a + (a + (a + ...)) push one operand per level.
  std::string src = "a";
  for (int i = 0; i < ScalarProgram::kMaxStack + 8; ++i) src = "a + (" + src + ")";
  ConstEnv consts;
  auto p = ScalarProgram::Compile(P(src), {"a"}, consts);
  // Either the compiler rejects it (falls back to the closure tree) or it
  // fits; it must never compile a program that overruns the stack.
  if (p.ok()) {
    EXPECT_LE(p.value().size(), 4096u);
    const double args[1] = {1.0};
    EXPECT_DOUBLE_EQ(p.value().Eval(args),
                     static_cast<double>(ScalarProgram::kMaxStack + 9));
  }
  // The public entry point still compiles it via the fallback.
  auto f = CompileScalarFn(P(src), {"a"}, consts);
  ASSERT_TRUE(f.ok());
  const double args[1] = {1.0};
  EXPECT_DOUBLE_EQ(f.value()(args),
                   static_cast<double>(ScalarProgram::kMaxStack + 9));
}

}  // namespace
}  // namespace sac::exec
