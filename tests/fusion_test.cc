// Tests for the elementwise pattern matchers (src/planner/fusion.h) and
// the planner-level fusion behavior they drive: every fig4-shaped head
// expression must map onto a dedicated kernel (no kGeneric fallback), and
// fusing a transposed operand must not change query results while saving
// a tile allocation per stage.
#include "src/planner/fusion.h"

#include <gtest/gtest.h>

#include "src/api/sac.h"
#include "src/comp/parser.h"

namespace sac::planner {
namespace {

comp::ExprPtr P(const std::string& src) {
  auto r = comp::Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

exec::ConstEnv NoConsts() { return {}; }

TEST(ZipPatternTest, PlainAddSubMul) {
  auto p = MatchZipPattern(P("a + b"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAdd);
  EXPECT_EQ(p.flops_per_element, 1u);
  // Addition commutes bitwise, so the reversed form keeps the kernel.
  p = MatchZipPattern(P("b + a"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAdd);
  p = MatchZipPattern(P("a - b"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kSub);
  p = MatchZipPattern(P("a * b"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kMul);
  p = MatchZipPattern(P("b * a"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kMul);
}

TEST(ZipPatternTest, ReversedSubBecomesAxpby) {
  // b - a must not dispatch to Sub(a, b); it folds to -1*a + 1*b.
  auto p = MatchZipPattern(P("b - a"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAxpby);
  EXPECT_DOUBLE_EQ(p.alpha, -1.0);
  EXPECT_DOUBLE_EQ(p.beta, 1.0);
}

TEST(ZipPatternTest, LinearFormsWithBoundScalars) {
  exec::ConstEnv consts{{"gamma", 0.002}, {"lambda", 0.02}};
  auto p = MatchZipPattern(P("gamma*a + lambda*b"), "a", "b", consts);
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAxpby);
  EXPECT_DOUBLE_EQ(p.alpha, 0.002);
  EXPECT_DOUBLE_EQ(p.beta, 0.02);
  EXPECT_EQ(p.flops_per_element, 3u);
  // Subtraction folds into the right coefficient's sign.
  p = MatchZipPattern(P("a - gamma*b"), "a", "b", consts);
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAxpby);
  EXPECT_DOUBLE_EQ(p.alpha, 1.0);
  EXPECT_DOUBLE_EQ(p.beta, -0.002);
  // Coefficients may be any const-foldable expression.
  p = MatchZipPattern(P("(2.0*gamma)*a + b"), "a", "b", consts);
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAxpby);
  EXPECT_DOUBLE_EQ(p.alpha, 0.004);
  // Operand order reversed: coefficients follow the arguments.
  p = MatchZipPattern(P("lambda*b + gamma*a"), "a", "b", consts);
  EXPECT_EQ(p.kind, ZipPattern::Kind::kAxpby);
  EXPECT_DOUBLE_EQ(p.alpha, 0.002);
  EXPECT_DOUBLE_EQ(p.beta, 0.02);
}

TEST(ZipPatternTest, GenericFallbackKeepsFlopCount) {
  auto p = MatchZipPattern(P("a * a + b"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kGeneric);
  EXPECT_GE(p.flops_per_element, 2u);
  // Same variable on both sides of +: not a two-operand linear form.
  p = MatchZipPattern(P("a + a"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kGeneric);
  // Unbound scalar coefficient cannot fold.
  p = MatchZipPattern(P("nope*a + b"), "a", "b", NoConsts());
  EXPECT_EQ(p.kind, ZipPattern::Kind::kGeneric);
}

TEST(MapPatternTest, IdentityScaleGeneric) {
  exec::ConstEnv consts{{"c", 3.0}};
  auto p = MatchMapPattern(P("v"), "v", consts);
  EXPECT_EQ(p.kind, MapPattern::Kind::kIdentity);
  EXPECT_EQ(p.flops_per_element, 0u);
  p = MatchMapPattern(P("c * v"), "v", consts);
  EXPECT_EQ(p.kind, MapPattern::Kind::kScale);
  EXPECT_DOUBLE_EQ(p.alpha, 3.0);
  p = MatchMapPattern(P("-v"), "v", consts);
  EXPECT_EQ(p.kind, MapPattern::Kind::kScale);
  EXPECT_DOUBLE_EQ(p.alpha, -1.0);
  p = MatchMapPattern(P("v * v"), "v", consts);
  EXPECT_EQ(p.kind, MapPattern::Kind::kGeneric);
}

// ---- end-to-end: fusion must not change results, must save allocs -------

TEST(FusionQueryTest, TransposedScaleIdenticalFusedAndUnfused) {
  // tiled(m,n)[ ((j,i), c*a) | ... ]: a transpose feeding a scale. The
  // fused plan computes it in one pass (FusedScale); the unfused plan
  // materializes the transposed temporary, then scales it.
  auto run = [](bool fuse, la::Tile* out, uint64_t* allocs) {
    Sac ctx(runtime::ClusterConfig{2, 2, 4});
    ctx.options().fuse_elementwise = fuse;
    ctx.Bind("A", ctx.RandomMatrix(96, 64, 32, 7).value());
    ctx.BindScalar("n", int64_t{96});
    ctx.BindScalar("m", int64_t{64});
    ctx.BindScalar("c", 2.5);
    auto r = ctx.EvalTiled("tiled(m,n)[ ((j,i), c*a) | ((i,j),a) <- A ]");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto local = ctx.ToLocal(r.value());
    ASSERT_TRUE(local.ok());
    *out = std::move(local).value();
    *allocs = ctx.metrics().Snapshot().tile_allocs;
  };
  la::Tile fused, unfused;
  uint64_t fused_allocs = 0, unfused_allocs = 0;
  run(true, &fused, &fused_allocs);
  run(false, &unfused, &unfused_allocs);
  ASSERT_EQ(fused.rows(), unfused.rows());
  ASSERT_EQ(fused.cols(), unfused.cols());
  EXPECT_TRUE(fused == unfused);  // bit-identical, not just close
  // The fused plan allocates strictly fewer tiles (no transposed temp).
  EXPECT_LT(fused_allocs, unfused_allocs);
}

}  // namespace
}  // namespace sac::planner
