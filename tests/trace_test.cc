// Unit tests for the sac::trace layer: histograms, per-thread span
// buffers and their merge, Chrome trace-event JSON export, plus the
// Metrics::Snapshot and SAC_LOG_LEVEL satellites.
#include "src/common/trace.h"

#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "tests/test_json.h"

namespace sac::trace {
namespace {

TEST(HistogramTest, CountsSumsAndPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  // Bucket upper bounds are powers of two minus one.
  EXPECT_GE(s.Percentile(0.5), 50u);
  EXPECT_LE(s.Percentile(0.5), 63u);
  EXPECT_GE(s.Percentile(1.0), 100u);
  EXPECT_EQ(s.Percentile(0.0), 1u);

  h.Reset();
  s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.Percentile(0.5), 0u);
}

TEST(HistogramTest, ZeroGoesToBucketZero) {
  Histogram h;
  h.Record(0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.Percentile(0.99), 0u);
}

TEST(HistogramTest, PercentileEdgeCases) {
  // Empty histogram: every percentile is 0.
  Histogram empty;
  EXPECT_EQ(empty.Snapshot().Percentile(0.0), 0u);
  EXPECT_EQ(empty.Snapshot().Percentile(0.5), 0u);
  EXPECT_EQ(empty.Snapshot().Percentile(1.0), 0u);

  // Single value: the bucket bound clamps to the observed max, so every
  // percentile reports the value exactly (p outside [0,1] clamps too).
  Histogram one;
  one.Record(37);
  const HistogramSnapshot s = one.Snapshot();
  EXPECT_EQ(s.Percentile(0.0), 37u);
  EXPECT_EQ(s.Percentile(0.5), 37u);
  EXPECT_EQ(s.Percentile(1.0), 37u);
  EXPECT_EQ(s.Percentile(-1.0), 37u);
  EXPECT_EQ(s.Percentile(2.0), 37u);

  // v == 0 lands in bucket 0 and reports 0 at every percentile.
  Histogram zero;
  zero.Record(0);
  EXPECT_EQ(zero.Snapshot().Percentile(0.0), 0u);
  EXPECT_EQ(zero.Snapshot().Percentile(1.0), 0u);
}

TEST(HistogramTest, MaxBucketSaturation) {
  // Values >= 2^63 saturate into the top bucket instead of indexing past
  // the array, and percentiles clamp to the observed max instead of
  // computing the top bucket's (overflowing) nominal bound.
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(uint64_t{1} << 63);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[63], 2u);
  EXPECT_EQ(s.min, uint64_t{1} << 63);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_EQ(s.Percentile(0.0), UINT64_MAX);  // both live in bucket 63
  EXPECT_EQ(s.Percentile(1.0), UINT64_MAX);

  // A large-but-not-saturating value still gets a finite bucket bound.
  Histogram big;
  big.Record((uint64_t{1} << 62) + 1);
  EXPECT_EQ(big.Snapshot().Percentile(1.0), (uint64_t{1} << 62) + 1);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count, 8000u);
  EXPECT_EQ(h.Snapshot().sum, 56000u);
}

TEST(TracerTest, ScopedSpanRecordsOnDestruction) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "outer", "stage");
    EXPECT_NE(span.id(), 0u);
    EXPECT_EQ(tracer.size(), 0u);  // not recorded until close
  }
  EXPECT_EQ(tracer.size(), 1u);
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].category, "stage");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(tracer.size(), 0u);  // drained
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    ScopedSpan span(&tracer, "ignored", "stage");
    EXPECT_EQ(span.id(), 0u);
  }
  tracer.Instant("also-ignored", "recompute", 0);
  EXPECT_EQ(tracer.size(), 0u);
  // Null tracer is a no-op too.
  ScopedSpan null_span(nullptr, "x", "y");
  EXPECT_EQ(null_span.id(), 0u);
}

TEST(TracerTest, ParentLinkAndNesting) {
  Tracer tracer;
  uint64_t outer_id = 0;
  {
    ScopedSpan outer(&tracer, "outer", "stage");
    outer_id = outer.id();
    { ScopedSpan inner(&tracer, "inner", "task", outer.id()); }
    { ScopedSpan inner2(&tracer, "inner2", "task", outer.id()); }
  }
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 3u);
  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : spans) by_id[s.id] = s;
  for (const SpanRecord& s : spans) {
    if (s.parent == 0) continue;
    ASSERT_TRUE(by_id.count(s.parent)) << "dangling parent of " << s.name;
    const SpanRecord& p = by_id[s.parent];
    EXPECT_EQ(p.id, outer_id);
    // Child interval inside parent interval.
    EXPECT_GE(s.start_us, p.start_us);
    EXPECT_LE(s.start_us + s.dur_us, p.start_us + p.dur_us);
  }
}

TEST(TracerTest, MergesPerThreadBuffersAcrossThreads) {
  Tracer tracer;
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&tracer, "t" + std::to_string(t), "task");
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  // Ids are unique across threads; tids distinguish the writers.
  std::map<uint64_t, int> id_count;
  std::map<uint32_t, int> per_tid;
  for (const SpanRecord& s : spans) {
    ++id_count[s.id];
    ++per_tid[s.tid];
  }
  EXPECT_EQ(id_count.size(), spans.size());
  EXPECT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, kSpansPerThread);
  // Drain sorted by start time.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
  }
}

TEST(TracerTest, InstantEventsCarryArgs) {
  Tracer tracer;
  tracer.Instant("recompute:join", "recompute", 0,
                 {{"partition", 3}, {"stage", 7}});
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].instant);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].key, "partition");
  EXPECT_EQ(spans[0].args[0].value, 3);
}

TEST(TracerTest, ChromeJsonParsesAndRoundTripsSpans) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "stage \"quoted\\name\"\n", "stage");
    outer.AddArg("shuffle_bytes", 12345);
    ScopedSpan inner(&tracer, "task", "task", outer.id());
  }
  tracer.Instant("recompute:x", "recompute", 0, {{"partition", 1}});
  const std::string json = Tracer::ToChromeJson(tracer.Drain());

  testjson::JsonValue doc;
  ASSERT_TRUE(testjson::ParseJson(json, &doc)) << json;
  ASSERT_TRUE(doc.Has("traceEvents"));
  const auto& events = doc.At("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 3u);
  bool saw_escaped = false, saw_instant = false, saw_arg = false;
  for (const auto& e : events.array) {
    ASSERT_TRUE(e.Has("name"));
    ASSERT_TRUE(e.Has("ph"));
    ASSERT_TRUE(e.Has("ts"));
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("tid"));
    ASSERT_TRUE(e.Has("args"));
    const std::string ph = e.At("ph").str;
    ASSERT_TRUE(ph == "X" || ph == "i");
    if (ph == "X") {
      ASSERT_TRUE(e.Has("dur"));
    }
    if (ph == "i") saw_instant = true;
    if (e.At("name").str == "stage \"quoted\\name\"\n") saw_escaped = true;
    if (e.At("args").Has("shuffle_bytes")) {
      EXPECT_EQ(e.At("args").At("shuffle_bytes").Int(), 12345);
      saw_arg = true;
    }
  }
  EXPECT_TRUE(saw_escaped);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_arg);
}

TEST(TracerTest, BoundedBuffersDropAndCount) {
  Tracer tracer;
  tracer.set_buffer_capacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span(&tracer, "s" + std::to_string(i), "stage");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);

  // The drop count is exported as a trailing Chrome counter event so
  // truncation is visible on the timeline.
  const std::string json =
      Tracer::ToChromeJson(tracer.Snapshot(), tracer.dropped_events());
  testjson::JsonValue doc;
  ASSERT_TRUE(testjson::ParseJson(json, &doc)) << json;
  const auto& events = doc.At("traceEvents").array;
  ASSERT_FALSE(events.empty());
  const auto& last = events.back();
  EXPECT_EQ(last.At("name").str, "trace:dropped_events");
  EXPECT_EQ(last.At("ph").str, "C");
  EXPECT_EQ(last.At("args").At("dropped_events").Int(), 6);

  // Draining frees buffer space; Reset also clears the drop counter.
  (void)tracer.Drain();
  { ScopedSpan span(&tracer, "fits-again", "stage"); }
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  tracer.Reset();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TracerTest, CounterEventsExportAsChromeCounterPhase) {
  Tracer tracer;
  tracer.Counter("engine", {{"resident_bytes", 123}, {"in_flight_tasks", 4}});
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].counter);
  EXPECT_EQ(spans[0].category, "counter");
  ASSERT_EQ(spans[0].args.size(), 2u);

  const std::string json = Tracer::ToChromeJson(spans);
  testjson::JsonValue doc;
  ASSERT_TRUE(testjson::ParseJson(json, &doc)) << json;
  const auto& events = doc.At("traceEvents").array;
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].At("ph").str, "C");
  EXPECT_EQ(events[0].At("name").str, "engine");
  EXPECT_FALSE(events[0].Has("dur"));
  // Counter args are the series values only -- no id/parent bookkeeping.
  EXPECT_EQ(events[0].At("args").At("resident_bytes").Int(), 123);
  EXPECT_EQ(events[0].At("args").At("in_flight_tasks").Int(), 4);
  EXPECT_FALSE(events[0].At("args").Has("id"));
  EXPECT_FALSE(events[0].At("args").Has("parent"));
}

TEST(StageRegistryTest, ReportStringGoldenLayout) {
  // Pins the report's column layout: operators grep these headers, and
  // Engine::ReportString is documented in docs/OPERATIONS.md. Update the
  // golden string AND the docs together, deliberately.
  Metrics totals;
  StageRegistry registry(&totals);
  const std::string report = registry.ReportString();
  const std::string expected_header =
      "stage label                    kind       tasks   records_in "
      "  shuffle_KB   cross_KB   local_KB  recomp retries faults "
      "backoff_ms  ckpt_KB evict_KB reload_KB dist_tx_KB dist_rx_KB "
      "reexec   wall_ms  task_p95_us\n";
  ASSERT_EQ(report.substr(0, expected_header.size()), expected_header);

  // One populated row keeps the value formatting pinned too.
  StageRef ref = registry.NewStage("golden", "shuffle");
  StageStats* stats = registry.Get(ref);
  ASSERT_NE(stats, nullptr);
  stats->AddTask();
  stats->AddShuffle(2048, 4, /*cross_executor=*/true);
  const std::string row = registry.ReportString().substr(
      expected_header.size());
  EXPECT_EQ(row,
            "0     golden                   shuffle        1            0 "
            "         2.0        2.0        0.0       0       0      0 "
            "       0.0      0.0      0.0       0.0        0.0        0.0 "
            "     0      0.00            0\n");
}

TEST(MetricsSnapshotTest, PlainCopyMatchesAtomics) {
  Metrics m;
  m.AddShuffle(1024, 10, /*cross_executor=*/true);
  m.AddShuffle(512, 5, /*cross_executor=*/false);
  m.AddTask();
  m.AddTask();
  m.AddRecompute();
  m.AddRecords(42);
  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.shuffle_bytes, 1536u);
  EXPECT_EQ(s.shuffle_records, 15u);
  EXPECT_EQ(s.cross_executor_bytes, 1024u);
  EXPECT_EQ(s.tasks_run, 2u);
  EXPECT_EQ(s.tasks_recomputed, 1u);
  EXPECT_EQ(s.records_processed, 42u);
  // Copyable plain struct; ToString goes through the snapshot.
  MetricsSnapshot copy = s;
  EXPECT_EQ(copy.ToString(), m.ToString());
}

TEST(LoggingTest, SetLogLevelFromEnvParsesNamesAndNumbers) {
  const LogLevel original = GetLogLevel();
  setenv("SAC_LOG_LEVEL", "debug", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  setenv("SAC_LOG_LEVEL", "ERROR", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  setenv("SAC_LOG_LEVEL", "1", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  // Unparsable and unset values keep the current level.
  setenv("SAC_LOG_LEVEL", "shout", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  unsetenv("SAC_LOG_LEVEL");
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  SetLogLevel(original);
}

}  // namespace
}  // namespace sac::trace
