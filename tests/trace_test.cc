// Unit tests for the sac::trace layer: histograms, per-thread span
// buffers and their merge, Chrome trace-event JSON export, plus the
// Metrics::Snapshot and SAC_LOG_LEVEL satellites.
#include "src/common/trace.h"

#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "tests/test_json.h"

namespace sac::trace {
namespace {

TEST(HistogramTest, CountsSumsAndPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  // Bucket upper bounds are powers of two minus one.
  EXPECT_GE(s.Percentile(0.5), 50u);
  EXPECT_LE(s.Percentile(0.5), 63u);
  EXPECT_GE(s.Percentile(1.0), 100u);
  EXPECT_EQ(s.Percentile(0.0), 1u);

  h.Reset();
  s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.Percentile(0.5), 0u);
}

TEST(HistogramTest, ZeroGoesToBucketZero) {
  Histogram h;
  h.Record(0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.Percentile(0.99), 0u);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count, 8000u);
  EXPECT_EQ(h.Snapshot().sum, 56000u);
}

TEST(TracerTest, ScopedSpanRecordsOnDestruction) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "outer", "stage");
    EXPECT_NE(span.id(), 0u);
    EXPECT_EQ(tracer.size(), 0u);  // not recorded until close
  }
  EXPECT_EQ(tracer.size(), 1u);
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].category, "stage");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(tracer.size(), 0u);  // drained
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    ScopedSpan span(&tracer, "ignored", "stage");
    EXPECT_EQ(span.id(), 0u);
  }
  tracer.Instant("also-ignored", "recompute", 0);
  EXPECT_EQ(tracer.size(), 0u);
  // Null tracer is a no-op too.
  ScopedSpan null_span(nullptr, "x", "y");
  EXPECT_EQ(null_span.id(), 0u);
}

TEST(TracerTest, ParentLinkAndNesting) {
  Tracer tracer;
  uint64_t outer_id = 0;
  {
    ScopedSpan outer(&tracer, "outer", "stage");
    outer_id = outer.id();
    { ScopedSpan inner(&tracer, "inner", "task", outer.id()); }
    { ScopedSpan inner2(&tracer, "inner2", "task", outer.id()); }
  }
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 3u);
  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : spans) by_id[s.id] = s;
  for (const SpanRecord& s : spans) {
    if (s.parent == 0) continue;
    ASSERT_TRUE(by_id.count(s.parent)) << "dangling parent of " << s.name;
    const SpanRecord& p = by_id[s.parent];
    EXPECT_EQ(p.id, outer_id);
    // Child interval inside parent interval.
    EXPECT_GE(s.start_us, p.start_us);
    EXPECT_LE(s.start_us + s.dur_us, p.start_us + p.dur_us);
  }
}

TEST(TracerTest, MergesPerThreadBuffersAcrossThreads) {
  Tracer tracer;
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&tracer, "t" + std::to_string(t), "task");
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  // Ids are unique across threads; tids distinguish the writers.
  std::map<uint64_t, int> id_count;
  std::map<uint32_t, int> per_tid;
  for (const SpanRecord& s : spans) {
    ++id_count[s.id];
    ++per_tid[s.tid];
  }
  EXPECT_EQ(id_count.size(), spans.size());
  EXPECT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, kSpansPerThread);
  // Drain sorted by start time.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
  }
}

TEST(TracerTest, InstantEventsCarryArgs) {
  Tracer tracer;
  tracer.Instant("recompute:join", "recompute", 0,
                 {{"partition", 3}, {"stage", 7}});
  std::vector<SpanRecord> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].instant);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].key, "partition");
  EXPECT_EQ(spans[0].args[0].value, 3);
}

TEST(TracerTest, ChromeJsonParsesAndRoundTripsSpans) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "stage \"quoted\\name\"\n", "stage");
    outer.AddArg("shuffle_bytes", 12345);
    ScopedSpan inner(&tracer, "task", "task", outer.id());
  }
  tracer.Instant("recompute:x", "recompute", 0, {{"partition", 1}});
  const std::string json = Tracer::ToChromeJson(tracer.Drain());

  testjson::JsonValue doc;
  ASSERT_TRUE(testjson::ParseJson(json, &doc)) << json;
  ASSERT_TRUE(doc.Has("traceEvents"));
  const auto& events = doc.At("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 3u);
  bool saw_escaped = false, saw_instant = false, saw_arg = false;
  for (const auto& e : events.array) {
    ASSERT_TRUE(e.Has("name"));
    ASSERT_TRUE(e.Has("ph"));
    ASSERT_TRUE(e.Has("ts"));
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("tid"));
    ASSERT_TRUE(e.Has("args"));
    const std::string ph = e.At("ph").str;
    ASSERT_TRUE(ph == "X" || ph == "i");
    if (ph == "X") ASSERT_TRUE(e.Has("dur"));
    if (ph == "i") saw_instant = true;
    if (e.At("name").str == "stage \"quoted\\name\"\n") saw_escaped = true;
    if (e.At("args").Has("shuffle_bytes")) {
      EXPECT_EQ(e.At("args").At("shuffle_bytes").Int(), 12345);
      saw_arg = true;
    }
  }
  EXPECT_TRUE(saw_escaped);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_arg);
}

TEST(MetricsSnapshotTest, PlainCopyMatchesAtomics) {
  Metrics m;
  m.AddShuffle(1024, 10, /*cross_executor=*/true);
  m.AddShuffle(512, 5, /*cross_executor=*/false);
  m.AddTask();
  m.AddTask();
  m.AddRecompute();
  m.AddRecords(42);
  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.shuffle_bytes, 1536u);
  EXPECT_EQ(s.shuffle_records, 15u);
  EXPECT_EQ(s.cross_executor_bytes, 1024u);
  EXPECT_EQ(s.tasks_run, 2u);
  EXPECT_EQ(s.tasks_recomputed, 1u);
  EXPECT_EQ(s.records_processed, 42u);
  // Copyable plain struct; ToString goes through the snapshot.
  MetricsSnapshot copy = s;
  EXPECT_EQ(copy.ToString(), m.ToString());
}

TEST(LoggingTest, SetLogLevelFromEnvParsesNamesAndNumbers) {
  const LogLevel original = GetLogLevel();
  setenv("SAC_LOG_LEVEL", "debug", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  setenv("SAC_LOG_LEVEL", "ERROR", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  setenv("SAC_LOG_LEVEL", "1", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  // Unparsable and unset values keep the current level.
  setenv("SAC_LOG_LEVEL", "shout", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  unsetenv("SAC_LOG_LEVEL");
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  SetLogLevel(original);
}

}  // namespace
}  // namespace sac::trace
