// Tests for the small common utilities: RNG, metrics, logging.
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"

namespace sac {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  EXPECT_NE(Rng(42).NextU64(), c.NextU64());
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, SplitStreamsAreIndependentAndStable) {
  Rng base(100);
  Rng s1 = base.Split(1);
  Rng s2 = base.Split(2);
  Rng s1b = Rng(100).Split(1);
  EXPECT_EQ(s1.NextU64(), s1b.NextU64());
  // Different streams diverge immediately.
  EXPECT_NE(Rng(100).Split(1).NextU64(), s2.NextU64());
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.NextBelow(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(MetricsTest, CountersAccumulateAndReset) {
  Metrics m;
  m.AddShuffle(1024, 10, true);
  m.AddShuffle(512, 5, false);
  m.AddTask();
  m.AddRecompute();
  m.AddRecords(100);
  EXPECT_EQ(m.shuffle_bytes(), 1536u);
  EXPECT_EQ(m.shuffle_records(), 15u);
  EXPECT_EQ(m.cross_executor_bytes(), 1024u);
  EXPECT_EQ(m.tasks_run(), 1u);
  EXPECT_EQ(m.tasks_recomputed(), 1u);
  EXPECT_EQ(m.records_processed(), 100u);
  m.Reset();
  EXPECT_EQ(m.shuffle_bytes(), 0u);
  EXPECT_EQ(m.tasks_run(), 0u);
}

TEST(MetricsTest, ThreadSafeAccumulation) {
  Metrics m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) m.AddShuffle(1, 1, false);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.shuffle_bytes(), 4000u);
}

TEST(MetricsTest, ToStringMentionsVolume) {
  Metrics m;
  m.AddShuffle(2 * 1024 * 1024, 3, true);
  EXPECT_NE(m.ToString().find("2"), std::string::npos);
  EXPECT_NE(m.ToString().find("MB"), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
  const double first = sw.ElapsedMillis();
  sw.Restart();
  EXPECT_LE(sw.ElapsedMillis(), first + 1000.0);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SAC_LOG(Info) << "suppressed";  // must not crash and stays quiet
  SetLogLevel(old);
}

TEST(LoggingTest, CheckMacrosPassOnTruth) {
  SAC_CHECK(true);
  SAC_CHECK_EQ(1, 1);
  SAC_CHECK_LT(1, 2);
  SAC_CHECK_GE(2, 2);
  // Failing CHECK aborts: verify via death test.
  EXPECT_DEATH({ SAC_CHECK_EQ(1, 2) << "boom"; }, "check failed");
}

}  // namespace
}  // namespace sac
