#include "src/comp/eval.h"

#include <gtest/gtest.h>

#include "src/comp/parser.h"

namespace sac::comp {
namespace {

using runtime::VDouble;
using runtime::VInt;
using runtime::VPair;

Value EvalSrc(Evaluator* ev, const std::string& src) {
  auto e = Parse(src);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  auto v = ev->Eval(e.value());
  EXPECT_TRUE(v.ok()) << src << " -> " << v.status().ToString();
  return v.ok() ? v.value() : Value::Unit();
}

/// Association list for a small matrix given by rows.
Value MatrixList(const std::vector<std::vector<double>>& rows) {
  ValueVec out;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) {
      out.push_back(VPair(runtime::VIdx2(i, j), VDouble(rows[i][j])));
    }
  }
  return Value::List(std::move(out));
}

TEST(EvalTest, Scalars) {
  Evaluator ev;
  EXPECT_EQ(EvalSrc(&ev, "1 + 2 * 3").AsInt(), 7);
  EXPECT_DOUBLE_EQ(EvalSrc(&ev, "1.5 * 4").AsDouble(), 6.0);
  EXPECT_EQ(EvalSrc(&ev, "7 / 2").AsInt(), 3);      // int division
  EXPECT_EQ(EvalSrc(&ev, "7 % 3").AsInt(), 1);
  EXPECT_TRUE(EvalSrc(&ev, "1 < 2 && 2 <= 2").AsBool());
  EXPECT_TRUE(EvalSrc(&ev, "false || !false").AsBool());
  EXPECT_EQ(EvalSrc(&ev, "if (2 > 1) 10 else 20").AsInt(), 10);
  EXPECT_EQ(EvalSrc(&ev, "-(3)").AsInt(), -3);
  EXPECT_DOUBLE_EQ(EvalSrc(&ev, "pow(2.0, 10)").AsDouble(), 1024.0);
  EXPECT_EQ(EvalSrc(&ev, "min(3, 5)").AsInt(), 3);
  EXPECT_EQ(EvalSrc(&ev, "max(3, 5)").AsInt(), 5);
  EXPECT_EQ(EvalSrc(&ev, "abs(-4)").AsInt(), 4);
}

TEST(EvalTest, RangesAndComprehensions) {
  Evaluator ev;
  Value v = EvalSrc(&ev, "[ i * i | i <- 0 until 5 ]");
  ASSERT_TRUE(v.is_list());
  ASSERT_EQ(v.AsList().size(), 5u);
  EXPECT_EQ(v.AsList()[4].AsInt(), 16);
  // `to` is inclusive.
  EXPECT_EQ(EvalSrc(&ev, "[ i | i <- 1 to 3 ]").AsList().size(), 3u);
  // Guards filter.
  EXPECT_EQ(EvalSrc(&ev, "[ i | i <- 0 until 10, i % 3 == 0 ]").AsList().size(),
            4u);
  // Lets bind.
  Value w = EvalSrc(&ev, "[ x | i <- 0 until 3, let x = i + 100 ]");
  EXPECT_EQ(w.AsList()[2].AsInt(), 102);
}

TEST(EvalTest, NestedGenerators) {
  Evaluator ev;
  Value v = EvalSrc(&ev, "[ (i,j) | i <- 0 until 2, j <- 0 until 3 ]");
  ASSERT_EQ(v.AsList().size(), 6u);
  EXPECT_TRUE(v.AsList()[5].Equals(runtime::VIdx2(1, 2)));
}

TEST(EvalTest, Reductions) {
  Evaluator ev;
  EXPECT_EQ(EvalSrc(&ev, "+/[ i | i <- 1 to 100 ]").AsInt(), 5050);
  EXPECT_EQ(EvalSrc(&ev, "*/[ i | i <- 1 to 5 ]").AsInt(), 120);
  EXPECT_EQ(EvalSrc(&ev, "min/[ i*i - 4*i | i <- 0 to 10 ]").AsInt(), -4);
  EXPECT_EQ(EvalSrc(&ev, "max/[ i | i <- 3 to 7 ]").AsInt(), 7);
  EXPECT_TRUE(EvalSrc(&ev, "&&/[ i < 10 | i <- 0 until 10 ]").AsBool());
  EXPECT_FALSE(EvalSrc(&ev, "&&/[ i < 9 | i <- 0 until 10 ]").AsBool());
  EXPECT_TRUE(EvalSrc(&ev, "||/[ i == 5 | i <- 0 until 10 ]").AsBool());
  EXPECT_EQ(EvalSrc(&ev, "count/[ i | i <- 0 until 7 ]").AsInt(), 7);
  EXPECT_DOUBLE_EQ(EvalSrc(&ev, "avg/[ toDouble(i) | i <- 1 to 3 ]").AsDouble(),
                   2.0);
  // Empty sums/products have monoid identities.
  EXPECT_EQ(EvalSrc(&ev, "+/[ i | i <- 0 until 0 ]").AsInt(), 0);
  EXPECT_EQ(EvalSrc(&ev, "*/[ i | i <- 0 until 0 ]").AsInt(), 1);
}

TEST(EvalTest, VectorSortednessCheckFromPaper) {
  Evaluator ev;
  ev.Bind("V", Value::List({VPair(VInt(0), VDouble(1)),
                            VPair(VInt(1), VDouble(2)),
                            VPair(VInt(2), VDouble(3))}));
  EXPECT_TRUE(
      EvalSrc(&ev, "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]")
          .AsBool());
  ev.Bind("V", Value::List({VPair(VInt(0), VDouble(5)),
                            VPair(VInt(1), VDouble(2))}));
  EXPECT_FALSE(
      EvalSrc(&ev, "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]")
          .AsBool());
}

TEST(EvalTest, GroupByRowSums) {
  Evaluator ev;
  ev.Bind("M", MatrixList({{1, 2, 3}, {4, 5, 6}}));
  Value v = EvalSrc(&ev, "[ (i, +/m) | ((i,j),m) <- M, group by i ]");
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_DOUBLE_EQ(v.AsList()[0].At(1).AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(v.AsList()[1].At(1).AsDouble(), 15.0);
}

TEST(EvalTest, GroupByCountsPerKey) {
  Evaluator ev;
  // Employees-per-department example from the introduction.
  ev.Bind("E", Value::List({
                   VPair(Value::Str("cs"), VInt(1)),
                   VPair(Value::Str("cs"), VInt(2)),
                   VPair(Value::Str("ee"), VInt(3)),
               }));
  Value v = EvalSrc(&ev, "[ (d, count/e) | (d, e) <- E, group by d ]");
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].At(0).AsString(), "cs");
  EXPECT_EQ(v.AsList()[0].At(1).AsInt(), 2);
  EXPECT_EQ(v.AsList()[1].At(1).AsInt(), 1);
}

TEST(EvalTest, MatrixMultiplicationQuery9) {
  Evaluator ev;
  ev.Bind("M", MatrixList({{1, 2}, {3, 4}}));
  ev.Bind("N", MatrixList({{5, 6}, {7, 8}}));
  ev.Bind("n", VInt(2));
  ev.Bind("m", VInt(2));
  Value v = EvalSrc(&ev,
                    "matrix(n,m)[ ((i,j),+/v) | ((i,k),a) <- M,"
                    " ((kk,j),b) <- N, kk == k, let v = a*b,"
                    " group by (i,j) ]");
  ASSERT_TRUE(v.is_tile());
  const la::Tile& t = v.AsTile();
  EXPECT_DOUBLE_EQ(t.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(t.At(1, 1), 50.0);
}

TEST(EvalTest, MatrixAdditionQuery8) {
  Evaluator ev;
  ev.Bind("M", MatrixList({{1, 2}, {3, 4}}));
  ev.Bind("N", MatrixList({{10, 20}, {30, 40}}));
  ev.Bind("n", VInt(2));
  ev.Bind("m", VInt(2));
  Value v = EvalSrc(&ev,
                    "matrix(n,m)[ ((i,j),a+b) | ((i,j),a) <- M,"
                    " ((ii,jj),b) <- N, ii == i, jj == j ]");
  const la::Tile& t = v.AsTile();
  EXPECT_DOUBLE_EQ(t.At(1, 0), 33.0);
}

TEST(EvalTest, ArrayIndexingSugar) {
  Evaluator ev;
  ev.Bind("M", Value::TileVal([] {
            la::Tile t(2, 2);
            t.Set(0, 0, 1);
            t.Set(0, 1, 2);
            t.Set(1, 0, 3);
            t.Set(1, 1, 4);
            return t;
          }()));
  EXPECT_DOUBLE_EQ(EvalSrc(&ev, "M[1, 0]").AsDouble(), 3.0);
  // Generator over a Tile sparsifies it.
  EXPECT_DOUBLE_EQ(EvalSrc(&ev, "+/[ v | ((i,j),v) <- M ]").AsDouble(), 10.0);
  // Out of bounds is an error, not UB.
  auto e = Parse("M[9, 9]").value();
  EXPECT_FALSE(ev.Eval(e).ok());
}

TEST(EvalTest, MatrixSmoothingHandlesBoundaries) {
  Evaluator ev;
  ev.Bind("M", MatrixList({{1, 1}, {1, 1}}));
  ev.Bind("n", VInt(2));
  ev.Bind("m", VInt(2));
  Value v = EvalSrc(&ev,
                    "matrix(n,m)[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- M,"
                    " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
                    " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]");
  const la::Tile& t = v.AsTile();
  // All neighbourhood values are 1, so every average is 1.
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(t.At(i, j), 1.0);
  }
}

TEST(EvalTest, GroupByKeyExpressionSugar) {
  Evaluator ev;
  Value v = EvalSrc(&ev,
                    "[ (k, +/i) | i <- 0 until 10, group by k : i % 2 ]");
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].At(0).AsInt(), 0);
  EXPECT_EQ(v.AsList()[0].At(1).AsInt(), 20);  // 0+2+4+6+8
  EXPECT_EQ(v.AsList()[1].At(1).AsInt(), 25);  // 1+3+5+7+9
}

TEST(EvalTest, VectorBuilderDensifies) {
  Evaluator ev;
  ev.Bind("n", VInt(4));
  Value v = EvalSrc(&ev, "vector(n)[ (i, toDouble(i*i)) | i <- 0 until 3 ]");
  ASSERT_EQ(v.AsList().size(), 4u);  // densified to n entries
  EXPECT_DOUBLE_EQ(v.AsList()[2].At(1).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(v.AsList()[3].At(1).AsDouble(), 0.0);  // missing -> 0
}

TEST(EvalTest, SetBuilderDeduplicates) {
  Evaluator ev;
  Value v = EvalSrc(&ev, "set[ i % 3 | i <- 0 until 30 ]");
  EXPECT_EQ(v.AsList().size(), 3u);
}

TEST(EvalTest, RowRotationExample) {
  // Section 5.2's rotation: row i moves to row (i+1) % n.
  Evaluator ev;
  ev.Bind("X", MatrixList({{1, 2}, {3, 4}, {5, 6}}));
  ev.Bind("n", VInt(3));
  ev.Bind("m", VInt(2));
  Value v = EvalSrc(
      &ev, "matrix(n,m)[ (((i+1) % n, j), v) | ((i,j),v) <- X ]");
  const la::Tile& t = v.AsTile();
  EXPECT_DOUBLE_EQ(t.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t.At(0, 0), 5.0);
}

TEST(EvalTest, ErrorsAreStatusesNotCrashes) {
  Evaluator ev;
  EXPECT_FALSE(ev.Eval(Parse("nope + 1").value()).ok());
  EXPECT_FALSE(ev.Eval(Parse("1 / 0").value()).ok());
  EXPECT_FALSE(ev.Eval(Parse("[ x | x <- 42 ]").value()).ok());  // not iterable
  EXPECT_FALSE(ev.Eval(Parse("min/[ i | i <- 0 until 0 ]").value()).ok());
  EXPECT_FALSE(ev.Eval(Parse("unknownfn(1)").value()).ok());
}

TEST(EvalTest, MultipleGroupBysNestLifting) {
  Evaluator ev;
  // First group by j sums columns per (i stays free? no: group-by lifts i),
  // then a second grouping over the resulting pairs.
  Value v = EvalSrc(&ev,
                    "[ (p, +/s) | (k, s) <- [ (j, +/x) | i <- 0 until 4,"
                    " j <- 0 until 2, let x = i, group by j ],"
                    " group by p : k % 1 ]");
  // Inner: for j=0 and j=1, sum of i over i=0..3 = 6. Outer: single group
  // p=0 summing [6,6] = 12.
  ASSERT_EQ(v.AsList().size(), 1u);
  EXPECT_EQ(v.AsList()[0].At(1).AsInt(), 12);
}

TEST(EvalTest, RandomIsDeterministicPerSeed) {
  Evaluator ev1(123), ev2(123), ev3(456);
  const double a = EvalSrc(&ev1, "random()").AsDouble();
  const double b = EvalSrc(&ev2, "random()").AsDouble();
  const double c = EvalSrc(&ev3, "random()").AsDouble();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
}

}  // namespace
}  // namespace sac::comp
