// Minimal JSON parser used by tests to validate the Chrome-trace and
// bench-report exporters without an external JSON dependency. Supports
// objects, arrays, strings (with the escapes our writers emit), numbers,
// true/false/null. Parse errors surface as ok == false.
#ifndef SAC_TESTS_TEST_JSON_H_
#define SAC_TESTS_TEST_JSON_H_

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sac::testjson {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool Has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
  int64_t Int() const { return static_cast<int64_t>(number); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            // Control characters only in our writers; keep the low byte.
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            *out += static_cast<char>(std::stoi(hex, nullptr, 16) & 0xff);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

}  // namespace sac::testjson

#endif  // SAC_TESTS_TEST_JSON_H_
