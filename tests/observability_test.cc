// Integration tests for the engine's observability layer: per-stage
// metric attribution (shuffle bytes land on the shuffle stage, not on
// narrow stages), roll-up consistency with the global Metrics, recompute
// events on the right lineage node, Chrome-trace validity, and the
// human-readable reports.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/engine.h"
#include "tests/test_json.h"

namespace sac::runtime {
namespace {

ValueVec KeyedRows(int n, int num_keys) {
  ValueVec rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(VPair(VInt(i % num_keys), VInt(i)));
  }
  return rows;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest() : eng_(ClusterConfig{2, 2, 4}) {}

  StageStatsSnapshot StageOf(const Dataset& ds) {
    const std::vector<StageStatsSnapshot> stages = eng_.stages().Snapshot();
    EXPECT_GE(ds->stage_id(), 0);
    EXPECT_LT(ds->stage_id(), static_cast<int>(stages.size()));
    return stages[ds->stage_id()];
  }

  Engine eng_;
};

TEST_F(ObservabilityTest, ShuffleBytesLandOnTheShuffleStageOnly) {
  Dataset src = eng_.Parallelize(KeyedRows(200, 13), 4);
  auto mapped = eng_.Map(src, [](const Value& v) {
    return VPair(v.At(0), VInt(v.At(1).AsInt() * 2));
  });
  ASSERT_TRUE(mapped.ok());
  auto reduced =
      eng_.ReduceByKey(mapped.value(), [](const Value& a, const Value& b) {
        return VInt(a.AsInt() + b.AsInt());
      });
  ASSERT_TRUE(reduced.ok());

  const StageStatsSnapshot source_stage = StageOf(src);
  const StageStatsSnapshot map_stage = StageOf(mapped.value());
  const StageStatsSnapshot reduce_stage = StageOf(reduced.value());

  EXPECT_EQ(source_stage.kind, "source");
  EXPECT_EQ(map_stage.kind, "narrow");
  EXPECT_EQ(reduce_stage.kind, "shuffle");
  EXPECT_EQ(reduce_stage.label, "reduceByKey");

  // The shuffle stage carries all the bytes; narrow/source stages none.
  EXPECT_GT(reduce_stage.counters.shuffle_bytes, 0u);
  EXPECT_GT(reduce_stage.counters.shuffle_records, 0u);
  EXPECT_EQ(map_stage.counters.shuffle_bytes, 0u);
  EXPECT_EQ(source_stage.counters.shuffle_bytes, 0u);

  // Tasks ran on every stage that executes partition functions.
  EXPECT_EQ(map_stage.counters.tasks_run, 4u);
  EXPECT_EQ(map_stage.counters.records_processed, 200u);
  // Shuffle: 4 map-side (shuffle-write) + 4 reduce-side tasks.
  EXPECT_EQ(reduce_stage.counters.tasks_run, 8u);
  EXPECT_EQ(reduce_stage.task_us.count, 8u);
}

TEST_F(ObservabilityTest, StageCountersRollUpToGlobalMetrics) {
  Dataset src = eng_.Parallelize(KeyedRows(300, 17), 5);
  auto filtered = eng_.Filter(src, [](const Value& v) {
    return v.At(1).AsInt() % 3 != 0;
  });
  ASSERT_TRUE(filtered.ok());
  auto grouped = eng_.GroupByKey(filtered.value());
  ASSERT_TRUE(grouped.ok());
  auto joined = eng_.Join(filtered.value(), filtered.value());
  ASSERT_TRUE(joined.ok());

  const MetricsSnapshot totals = eng_.metrics().Snapshot();
  MetricsSnapshot summed;
  for (const StageStatsSnapshot& s : eng_.stages().Snapshot()) {
    summed.shuffle_bytes += s.counters.shuffle_bytes;
    summed.shuffle_records += s.counters.shuffle_records;
    summed.cross_executor_bytes += s.counters.cross_executor_bytes;
    summed.tasks_run += s.counters.tasks_run;
    summed.tasks_recomputed += s.counters.tasks_recomputed;
    summed.records_processed += s.counters.records_processed;
  }
  EXPECT_EQ(summed.shuffle_bytes, totals.shuffle_bytes);
  EXPECT_EQ(summed.shuffle_records, totals.shuffle_records);
  EXPECT_EQ(summed.cross_executor_bytes, totals.cross_executor_bytes);
  EXPECT_EQ(summed.tasks_run, totals.tasks_run);
  EXPECT_EQ(summed.tasks_recomputed, totals.tasks_recomputed);
  EXPECT_EQ(summed.records_processed, totals.records_processed);
  EXPECT_GT(totals.shuffle_bytes, 0u);
}

TEST_F(ObservabilityTest, RecomputeEventsLandOnTheInvalidatedNode) {
  Dataset src = eng_.Parallelize(KeyedRows(100, 7), 4);
  auto reduced = eng_.ReduceByKey(src, [](const Value& a, const Value& b) {
    return VInt(a.AsInt() + b.AsInt());
  });
  ASSERT_TRUE(reduced.ok());
  auto mapped = eng_.Map(reduced.value(), [](const Value& v) { return v; });
  ASSERT_TRUE(mapped.ok());

  eng_.tracer().Reset();  // keep only the recovery in the trace
  reduced.value()->InvalidatePartition(1);
  ASSERT_TRUE(eng_.Collect(reduced.value()).ok());

  // The recompute counter lands on the invalidated shuffle node, not on
  // its parent or consumer.
  EXPECT_GE(StageOf(reduced.value()).counters.tasks_recomputed, 1u);
  EXPECT_EQ(StageOf(src).counters.tasks_recomputed, 0u);
  EXPECT_EQ(StageOf(mapped.value()).counters.tasks_recomputed, 0u);

  // And the trace shows a recompute instant naming the node.
  bool saw_recompute = false;
  for (const trace::SpanRecord& s : eng_.tracer().Snapshot()) {
    if (s.category != "recompute") continue;
    EXPECT_EQ(s.name, "recompute:reduceByKey");
    EXPECT_TRUE(s.instant);
    ASSERT_EQ(s.args.size(), 2u);
    EXPECT_EQ(s.args[0].key, "partition");
    EXPECT_EQ(s.args[0].value, 1);
    EXPECT_EQ(s.args[1].key, "stage");
    EXPECT_EQ(s.args[1].value, reduced.value()->stage_id());
    saw_recompute = true;
  }
  EXPECT_TRUE(saw_recompute);
}

TEST_F(ObservabilityTest, ChromeTraceIsValidNestedAndMatchesMetrics) {
  Dataset src = eng_.Parallelize(KeyedRows(120, 11), 4);
  auto mapped = eng_.Map(src, [](const Value& v) { return v; });
  ASSERT_TRUE(mapped.ok());
  auto reduced =
      eng_.ReduceByKey(mapped.value(), [](const Value& a, const Value& b) {
        return VInt(a.AsInt() + b.AsInt());
      });
  ASSERT_TRUE(reduced.ok());

  testjson::JsonValue doc;
  ASSERT_TRUE(testjson::ParseJson(eng_.ChromeTraceJson(), &doc));
  const auto& events = doc.At("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  // Index spans by id; count task spans; find stage shuffle args.
  std::map<int64_t, const testjson::JsonValue*> by_id;
  uint64_t task_spans = 0;
  uint64_t traced_shuffle_bytes = 0;
  for (const auto& e : events.array) {
    by_id[e.At("args").At("id").Int()] = &e;
    if (e.At("cat").str == "task") ++task_spans;
    if (e.At("cat").str == "stage" &&
        e.At("args").Has("shuffle_bytes")) {
      traced_shuffle_bytes +=
          static_cast<uint64_t>(e.At("args").At("shuffle_bytes").Int());
    }
  }
  const MetricsSnapshot totals = eng_.metrics().Snapshot();
  // Every executed task has a span, and the stage-span shuffle args sum
  // to the global roll-up.
  EXPECT_EQ(task_spans, totals.tasks_run);
  EXPECT_EQ(traced_shuffle_bytes, totals.shuffle_bytes);

  // Parent links resolve and children nest inside their parents.
  uint64_t children_checked = 0;
  for (const auto& e : events.array) {
    if (!e.At("args").Has("parent")) continue;
    const auto it = by_id.find(e.At("args").At("parent").Int());
    ASSERT_NE(it, by_id.end()) << "dangling parent";
    const auto& p = *it->second;
    EXPECT_GE(e.At("ts").number, p.At("ts").number);
    if (e.Has("dur") && p.Has("dur")) {
      EXPECT_LE(e.At("ts").number + e.At("dur").number,
                p.At("ts").number + p.At("dur").number);
    }
    ++children_checked;
  }
  EXPECT_EQ(children_checked, task_spans);
}

TEST_F(ObservabilityTest, ExplainWithStatsAnnotatesTheLineage) {
  Dataset src = eng_.Parallelize(KeyedRows(80, 5), 4);
  auto mapped = eng_.Map(src, [](const Value& v) { return v; }, "renamed");
  ASSERT_TRUE(mapped.ok());
  auto reduced =
      eng_.ReduceByKey(mapped.value(), [](const Value& a, const Value& b) {
        return VInt(a.AsInt() + b.AsInt());
      });
  ASSERT_TRUE(reduced.ok());

  const std::string explain = eng_.ExplainWithStats(reduced.value());
  EXPECT_NE(explain.find("reduceByKey [shuffle]"), std::string::npos);
  EXPECT_NE(explain.find("renamed [narrow]"), std::string::npos);
  EXPECT_NE(explain.find("parallelize [source]"), std::string::npos);
  EXPECT_NE(explain.find("shuffle_bytes="), std::string::npos);
  // The root line is the shuffle node; it reports nonzero bytes.
  const std::string root_line = explain.substr(0, explain.find('\n'));
  EXPECT_NE(root_line.find("reduceByKey"), std::string::npos);
  EXPECT_EQ(root_line.find("shuffle_bytes=0"), std::string::npos);

  // A diamond lineage prints shared parents once.
  auto joined = eng_.Join(mapped.value(), mapped.value());
  ASSERT_TRUE(joined.ok());
  const std::string diamond = eng_.ExplainWithStats(joined.value());
  EXPECT_NE(diamond.find("(shown above)"), std::string::npos);
}

TEST_F(ObservabilityTest, ReportStringListsStagesAndResetClears) {
  Dataset src = eng_.Parallelize(KeyedRows(60, 4), 3);
  auto grouped = eng_.GroupByKey(src);
  ASSERT_TRUE(grouped.ok());
  auto gen = eng_.GeneratePartitions(
      2,
      [](int i, Partition* out) {
        out->push_back(VPair(VInt(i), VInt(i)));
        return Status::OK();
      },
      "gen");
  ASSERT_TRUE(gen.ok());
  const std::string report = eng_.ReportString();
  EXPECT_NE(report.find("groupByKey"), std::string::npos);
  EXPECT_NE(report.find("parallelize"), std::string::npos);
  EXPECT_NE(report.find("shuffle_KB"), std::string::npos);

  eng_.ResetStats();
  EXPECT_EQ(eng_.stages().size(), 0u);
  EXPECT_EQ(eng_.metrics().tasks_run(), 0u);
  EXPECT_EQ(eng_.tracer().size(), 0u);

  // Stale stage refs from before the reset don't alias fresh stages, and
  // recomputation on a pre-reset dataset still rolls into the totals.
  Dataset fresh = eng_.Parallelize(KeyedRows(10, 2), 2);
  ASSERT_GE(fresh->stage_id(), 0);
  gen.value()->InvalidatePartition(0);
  ASSERT_TRUE(eng_.Collect(gen.value()).ok());
  EXPECT_EQ(eng_.metrics().tasks_recomputed(), 1u);
  for (const StageStatsSnapshot& s : eng_.stages().Snapshot()) {
    EXPECT_EQ(s.counters.tasks_recomputed, 0u);
  }
}

}  // namespace
}  // namespace sac::runtime
