// Integration tests: multi-query pipelines through the public API,
// iterative algorithms, error propagation, and cross-strategy agreement.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/api/algorithms.h"
#include "src/api/sac.h"
#include "src/la/kernels.h"

namespace sac {
namespace {

using planner::Strategy;

TEST(IntegrationTest, PowerIterationConverges) {
  // Largest-eigenvalue power iteration on a symmetric positive matrix,
  // every step a comprehension: y = A x; x = y / ||y||.
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  const int64_t n = 32, blk = 8;
  // A = B^T B is symmetric PSD.
  auto b = ctx.RandomMatrix(n, n, blk, 51, 0.0, 1.0).value();
  auto a = algo::MultiplyAt(&ctx, b, b).value();
  ctx.Bind("A", a);
  ctx.BindScalar("n", n);

  auto x = storage::VectorFromLocal(&ctx.engine(),
                                    std::vector<double>(n, 1.0), blk)
               .value();
  double prev_lambda = 0, lambda = 0;
  for (int it = 0; it < 30; ++it) {
    ctx.Bind("X", x);
    auto y = ctx.EvalVector(
                    "tiled(n)[ (i, +/c) | ((i,k),m) <- A, (kk,v) <- X,"
                    " kk == k, let c = m*v, group by i ]")
                 .value();
    auto ly = ctx.ToLocal(y).value();
    double norm = std::sqrt(
        std::inner_product(ly.begin(), ly.end(), ly.begin(), 0.0));
    ASSERT_GT(norm, 0);
    prev_lambda = lambda;
    lambda = norm;
    for (auto& v : ly) v /= norm;
    x = storage::VectorFromLocal(&ctx.engine(), ly, blk).value();
  }
  // Converged: successive eigenvalue estimates agree.
  EXPECT_NEAR(lambda, prev_lambda, 1e-6 * lambda);
  // Rayleigh check against local arithmetic: ||A x|| ~ lambda.
  auto la_ = ctx.ToLocal(a).value();
  auto lx = ctx.ToLocal(x).value();
  std::vector<double> ax(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) ax[i] += la_.At(i, j) * lx[j];
  }
  const double ref = std::sqrt(
      std::inner_product(ax.begin(), ax.end(), ax.begin(), 0.0));
  EXPECT_NEAR(lambda, ref, 1e-6 * ref);
}

TEST(IntegrationTest, ChainedQueriesRebindIntermediates) {
  // D = (A + B)^T x A, three queries with rebinding between them.
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  const int64_t n = 24, blk = 8;
  auto a = ctx.RandomMatrix(n, n, blk, 61).value();
  auto b = ctx.RandomMatrix(n, n, blk, 62).value();
  auto sum = algo::Add(&ctx, a, b).value();
  auto sum_t = algo::Transpose(&ctx, sum).value();
  auto d = algo::Multiply(&ctx, sum_t, a).value();

  // Local oracle.
  auto la_ = ctx.ToLocal(a).value();
  auto lb = ctx.ToLocal(b).value();
  la::Tile s, st;
  la::Add(la_, lb, &s);
  la::Transpose(s, &st);
  la::Tile ref(n, n);
  la::GemmAccum(st, la_, &ref);
  auto ld = ctx.ToLocal(d).value();
  for (int64_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(ld.data()[i], ref.data()[i], 1e-8);
  }
}

TEST(IntegrationTest, SortednessCheckFromSection2) {
  // &&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ] on a distributed
  // block vector (runs through the fallback; totality check).
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  std::vector<double> sorted(40);
  std::iota(sorted.begin(), sorted.end(), 0.0);
  ctx.Bind("V",
           storage::VectorFromLocal(&ctx.engine(), sorted, 8).value());
  auto r = ctx.Eval("&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().value.AsBool());

  std::swap(sorted[3], sorted[20]);
  ctx.Bind("V",
           storage::VectorFromLocal(&ctx.engine(), sorted, 8).value());
  auto r2 = ctx.Eval("&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().value.AsBool());
}

TEST(IntegrationTest, ParseErrorsSurfaceThroughApi) {
  Sac ctx;
  auto r = ctx.Eval("tiled(n)[ oops | ");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(IntegrationTest, WrongResultKindIsInvalidArgument) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(8, 8, 4, 71).value());
  ctx.BindScalar("n", int64_t{8});
  // A matrix query through EvalVector must fail cleanly.
  auto r = ctx.EvalVector("tiled(n,n)[ ((i,j),a) | ((i,j),a) <- A ]");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(IntegrationTest, AllMultiplyStrategiesAgree) {
  // GBJ, join+reduceByKey, coordinate format and the reference evaluator
  // must produce the same product.
  const int64_t n = 20, blk = 5;
  const std::string src =
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]";
  std::vector<la::Tile> results;
  for (int mode = 0; mode < 3; ++mode) {
    planner::PlannerOptions opts;
    if (mode == 1) opts.enable_group_by_join = false;
    if (mode == 2) opts.force_coo = true;
    Sac ctx(runtime::ClusterConfig{2, 2, 4}, opts);
    ctx.Bind("A", ctx.RandomMatrix(n, n, blk, 81).value());
    ctx.Bind("B", ctx.RandomMatrix(n, n, blk, 82).value());
    ctx.BindScalar("n", n);
    auto r = ctx.EvalTiled(src);
    ASSERT_TRUE(r.ok()) << "mode " << mode << ": "
                        << r.status().ToString();
    results.push_back(ctx.ToLocal(r.value()).value());
  }
  for (size_t m = 1; m < results.size(); ++m) {
    for (int64_t i = 0; i < results[0].size(); ++i) {
      ASSERT_NEAR(results[0].data()[i], results[m].data()[i], 1e-8)
          << "strategy " << m;
    }
  }
}

TEST(IntegrationTest, ScalarBindingsParameterizeQueries) {
  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(16, 16, 8, 91).value());
  ctx.BindScalar("n", int64_t{16});
  for (double alpha : {0.5, 2.0, -1.0}) {
    ctx.BindScalar("alpha", alpha);
    auto r = ctx.EvalTiled("tiled(n,n)[ ((i,j), alpha*a) | ((i,j),a) <- A ]");
    ASSERT_TRUE(r.ok());
    auto la_ = ctx.ToLocal(ctx.bindings().at("A").tiled).value();
    auto lr = ctx.ToLocal(r.value()).value();
    for (int64_t i = 0; i < lr.size(); ++i) {
      ASSERT_DOUBLE_EQ(lr.data()[i], alpha * la_.data()[i]);
    }
  }
}

TEST(IntegrationTest, DistributedResultsSurviveFaultInjection) {
  // Kill partitions of a computed result; lineage recovery must rebuild
  // the same tiles through the whole plan.
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  ctx.Bind("A", ctx.RandomMatrix(24, 24, 8, 95).value());
  ctx.Bind("B", ctx.RandomMatrix(24, 24, 8, 96).value());
  ctx.BindScalar("n", int64_t{24});
  auto c = ctx.EvalTiled(
                  "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
                  " kk == k, let v = a*b, group by (i,j) ]")
               .value();
  auto before = ctx.ToLocal(c).value();
  for (int p = 0; p < c.tiles->num_partitions(); p += 2) {
    c.tiles->InvalidatePartition(p);
  }
  auto after = ctx.ToLocal(c).value();
  EXPECT_TRUE(before == after);
  EXPECT_GT(ctx.metrics().tasks_recomputed(), 0u);
}

}  // namespace
}  // namespace sac
