#include "src/comp/parser.h"

#include <gtest/gtest.h>

#include "src/comp/lexer.h"

namespace sac::comp {
namespace {

ExprPtr MustParse(const std::string& src) {
  auto r = Parse(src);
  EXPECT_TRUE(r.ok()) << src << " -> " << r.status().ToString();
  return r.ok() ? r.value() : nullptr;
}

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("((i,j),m) <- M, group by i").value();
  EXPECT_EQ(toks[0].kind, TokKind::kLParen);
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(LexerTest, ReductionOperators) {
  auto toks = Lex("+/ */ &&/ ||/ ++/ min/ max/ avg/ count/").value();
  ASSERT_EQ(toks.size(), 10u);  // 9 reductions + EOF
  EXPECT_EQ(toks[0].reduce_op, ReduceOp::kSum);
  EXPECT_EQ(toks[1].reduce_op, ReduceOp::kProd);
  EXPECT_EQ(toks[2].reduce_op, ReduceOp::kAnd);
  EXPECT_EQ(toks[3].reduce_op, ReduceOp::kOr);
  EXPECT_EQ(toks[4].reduce_op, ReduceOp::kConcat);
  EXPECT_EQ(toks[5].reduce_op, ReduceOp::kMin);
  EXPECT_EQ(toks[6].reduce_op, ReduceOp::kMax);
  EXPECT_EQ(toks[7].reduce_op, ReduceOp::kAvg);
  EXPECT_EQ(toks[8].reduce_op, ReduceOp::kCount);
}

TEST(LexerTest, SlashAloneIsDivision) {
  auto toks = Lex("a / b").value();
  EXPECT_EQ(toks[1].kind, TokKind::kSlash);
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto toks = Lex("42 3.5 2e3 1e-2").value();
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[1].double_val, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].double_val, 2000.0);
  EXPECT_DOUBLE_EQ(toks[3].double_val, 0.01);
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = Lex("a # comment\n b").value();
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, PositionsTracked) {
  auto toks = Lex("a\n  b").value();
  EXPECT_EQ(toks[0].pos.line, 1);
  EXPECT_EQ(toks[1].pos.line, 2);
  EXPECT_EQ(toks[1].pos.col, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a & b").ok());
}

TEST(ParserTest, ArithmeticPrecedence) {
  ExprPtr e = MustParse("1 + 2 * 3");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->ToString(), "(1 + (2 * 3))");
  EXPECT_EQ(MustParse("(1 + 2) * 3")->ToString(), "((1 + 2) * 3)");
  EXPECT_EQ(MustParse("a && b || c")->ToString(), "((a && b) || c)");
  EXPECT_EQ(MustParse("i / 2 % 5")->ToString(), "((i / 2) % 5)");
}

TEST(ParserTest, ComparisonAndRange) {
  EXPECT_EQ(MustParse("i <= n - 1")->ToString(), "(i <= (n - 1))");
  ExprPtr r = MustParse("0 until n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->kind, Expr::Kind::kCall);
  EXPECT_EQ(r->str_val, "until");
  EXPECT_EQ(MustParse("(i-1) to (i+1)")->str_val, "to");
}

TEST(ParserTest, SimpleComprehension) {
  ExprPtr e = MustParse("[ (i, v) | (i,v) <- V, v > 0 ]");
  ASSERT_TRUE(e);
  ASSERT_EQ(e->kind, Expr::Kind::kComprehension);
  ASSERT_EQ(e->quals.size(), 2u);
  EXPECT_EQ(e->quals[0].kind, Qualifier::Kind::kGenerator);
  EXPECT_EQ(e->quals[1].kind, Qualifier::Kind::kGuard);
}

TEST(ParserTest, RowSumComprehension) {
  // The paper's running example: V_i = sum_j M_ij.
  ExprPtr e = MustParse("vector(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]");
  ASSERT_TRUE(e);
  ASSERT_EQ(e->kind, Expr::Kind::kBuild);
  EXPECT_EQ(e->str_val, "vector");
  ASSERT_EQ(e->children.size(), 2u);  // comp + n
  const ExprPtr& comp = e->children[0];
  ASSERT_EQ(comp->quals.size(), 2u);
  EXPECT_EQ(comp->quals[1].kind, Qualifier::Kind::kGroupBy);
  EXPECT_EQ(comp->quals[1].pattern->ToString(), "i");
  const ExprPtr& head = comp->children[0];
  ASSERT_EQ(head->kind, Expr::Kind::kTuple);
  EXPECT_EQ(head->children[1]->kind, Expr::Kind::kReduce);
  EXPECT_EQ(head->children[1]->reduce_op, ReduceOp::kSum);
}

TEST(ParserTest, MatrixMultiplication) {
  // Query (9) from the paper.
  ExprPtr e = MustParse(
      "matrix(n,m)[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N,"
      "  kk == k, let v = a*b, group by (i,j) ]");
  ASSERT_TRUE(e);
  ASSERT_EQ(e->kind, Expr::Kind::kBuild);
  EXPECT_EQ(e->str_val, "matrix");
  const ExprPtr& comp = e->children[0];
  ASSERT_EQ(comp->quals.size(), 5u);
  EXPECT_EQ(comp->quals[2].kind, Qualifier::Kind::kGuard);
  EXPECT_EQ(comp->quals[3].kind, Qualifier::Kind::kLet);
  EXPECT_EQ(comp->quals[4].pattern->ToString(), "(i,j)");
}

TEST(ParserTest, GroupByWithKeyExpression) {
  ExprPtr e = MustParse(
      "[ (k, +/c) | ((i,j),a) <- A, let c = a, group by k : (i/10, j/10) ]");
  ASSERT_TRUE(e);
  const Qualifier& gb = e->quals.back();
  EXPECT_EQ(gb.kind, Qualifier::Kind::kGroupBy);
  ASSERT_TRUE(gb.expr != nullptr);
  EXPECT_EQ(gb.pattern->ToString(), "k");
}

TEST(ParserTest, ArrayIndexingVsBuilder) {
  ExprPtr idx = MustParse("A[i, j] + N[i]");
  ASSERT_TRUE(idx);
  EXPECT_EQ(idx->children[0]->kind, Expr::Kind::kIndex);
  ExprPtr bld = MustParse("rdd[ (i, v) | (i,v) <- V ]");
  ASSERT_TRUE(bld);
  EXPECT_EQ(bld->kind, Expr::Kind::kBuild);
  EXPECT_EQ(bld->str_val, "rdd");
  EXPECT_TRUE(bld->children.size() == 1u);  // no builder args
}

TEST(ParserTest, WildcardAndNestedPatterns) {
  ExprPtr e = MustParse("[ v | ((_, j), v) <- M, j == 0 ]");
  ASSERT_TRUE(e);
  const auto vars = e->quals[0].pattern->Vars();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "j");
  EXPECT_EQ(vars[1], "v");
}

TEST(ParserTest, DotLengthBecomesCall) {
  ExprPtr e = MustParse("(+/a)/a.length");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Expr::Kind::kBinary);
  EXPECT_EQ(e->children[1]->kind, Expr::Kind::kCall);
  EXPECT_EQ(e->children[1]->str_val, "length");
}

TEST(ParserTest, IfElse) {
  ExprPtr e = MustParse("if (a > 0) a else -a");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Expr::Kind::kIf);
}

TEST(ParserTest, ListLiteralAndEmptyList) {
  ExprPtr e = MustParse("[1, 2, 3]");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Expr::Kind::kCall);
  EXPECT_EQ(e->str_val, "list");
  EXPECT_EQ(e->children.size(), 3u);
  EXPECT_EQ(MustParse("[]")->children.size(), 0u);
}

TEST(ParserTest, TotalAggregation) {
  // Sortedness check from Section 2.
  ExprPtr e = MustParse(
      "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Expr::Kind::kReduce);
  EXPECT_EQ(e->reduce_op, ReduceOp::kAnd);
  EXPECT_EQ(e->children[0]->kind, Expr::Kind::kComprehension);
}

TEST(ParserTest, SmoothingComprehension) {
  // Section 3 smoothing example with boundary guards.
  ExprPtr e = MustParse(
      "matrix(n,m)[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- M,"
      "  ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
      "  ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->children[0]->quals.size(), 8u);
}

TEST(ParserTest, ParseErrorsCarryPositions) {
  auto r = Parse("[ x | y <- ");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("1:"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingInput) {
  EXPECT_FALSE(Parse("a + b c").ok());
}

TEST(ParserTest, PatternParsing) {
  auto p = ParsePattern("((i,j),m)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()->ToString(), "((i,j),m)");
  EXPECT_FALSE(ParsePattern("(i,").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  // Printing then reparsing yields a structurally equal tree.
  const char* sources[] = {
      "matrix(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N,"
      " ii == i, jj == j ]",
      "vector(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
      "[ (d, count/e) | e <- E, d <- D, e == d, group by d ]",
  };
  for (const char* src : sources) {
    ExprPtr e1 = MustParse(src);
    ASSERT_TRUE(e1);
    ExprPtr e2 = MustParse(e1->ToString());
    ASSERT_TRUE(e2);
    EXPECT_TRUE(e1->Equals(*e2)) << e1->ToString();
  }
}

TEST(AstTest, FreeVarsRespectBinding) {
  ExprPtr e = MustParse("[ a + n | (i,a) <- V, i < n ]");
  auto fv = FreeVars(e);
  // V and n are free; i and a are bound by the generator.
  ASSERT_EQ(fv.size(), 2u);
  EXPECT_EQ(fv[0], "V");
  EXPECT_EQ(fv[1], "n");
}

TEST(AstTest, SubstituteRespectsShadowing) {
  ExprPtr e = MustParse("[ x | x <- xs ]");
  ExprPtr sub = SubstituteVar(e, "x", Expr::Int(1));
  // Bound x is untouched.
  EXPECT_EQ(sub->ToString(), e->ToString());
  ExprPtr e2 = MustParse("x + [ x | x <- xs ]");
  ExprPtr sub2 = SubstituteVar(e2, "x", Expr::Int(1));
  EXPECT_NE(sub2->ToString().find("1 +"), std::string::npos);
}

TEST(AstTest, FreshenBoundVarsAvoidsCapture) {
  ExprPtr e = MustParse("[ y | y <- ys ]");
  int counter = 0;
  ExprPtr fresh = FreshenBoundVars(e, &counter);
  EXPECT_NE(fresh->ToString(), e->ToString());
  EXPECT_NE(fresh->ToString().find("y$0"), std::string::npos);
}

}  // namespace
}  // namespace sac::comp
