// Tests for the DIABLO-style loop front end: parsing, translation to
// comprehensions, and end-to-end execution (loops -> comprehensions ->
// block plans) compared against local oracles.
#include <gtest/gtest.h>

#include "src/api/sac.h"
#include "src/comp/loops.h"
#include "src/la/kernels.h"

namespace sac {
namespace {

using comp::LoopStmt;
using comp::LoopStmtPtr;

TEST(LoopParseTest, ForNestWithAssignment) {
  auto p = comp::ParseLoopProgram(
      "for i = 0, n-1 do for j = 0, n-1 do C[i,j] := A[i,j] + B[i,j];");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const LoopStmtPtr& prog = p.value();
  ASSERT_EQ(prog->kind, LoopStmt::Kind::kSeq);
  ASSERT_EQ(prog->stmts.size(), 1u);
  const LoopStmtPtr& outer = prog->stmts[0];
  EXPECT_EQ(outer->kind, LoopStmt::Kind::kFor);
  EXPECT_EQ(outer->var, "i");
  EXPECT_EQ(outer->body->kind, LoopStmt::Kind::kFor);
  EXPECT_EQ(outer->body->body->kind, LoopStmt::Kind::kAssign);
  EXPECT_EQ(outer->body->body->target, "C");
}

TEST(LoopParseTest, UpdateAndBlocks) {
  auto p = comp::ParseLoopProgram(
      "for i = 0, 9 do {\n"
      "  V[i] := 0.0;\n"
      "}\n"
      "for i = 0, 9 do for j = 0, 9 do V[i] += A[i,j];");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value()->stmts.size(), 2u);
  // Round-trips through ToString into something containing both forms.
  const std::string s = p.value()->ToString();
  EXPECT_NE(s.find(":="), std::string::npos);
  EXPECT_NE(s.find("+="), std::string::npos);
}

TEST(LoopParseTest, Errors) {
  EXPECT_FALSE(comp::ParseLoopProgram("").ok());
  EXPECT_FALSE(comp::ParseLoopProgram("for i = 0 do x[i] := 1;").ok());
  EXPECT_FALSE(comp::ParseLoopProgram("C[i,j] = 1;").ok());   // not := or +=
  EXPECT_FALSE(comp::ParseLoopProgram("C[i,j] := 1").ok());   // missing ;
  EXPECT_FALSE(comp::ParseLoopProgram("{ C[i] := 1;").ok());  // open block
}

TEST(LoopTranslateTest, AssignBecomesComprehension) {
  auto p = comp::ParseLoopProgram(
      "for i = 0, n-1 do for j = 0, m-1 do C[i,j] := A[i,j] * 2.0;");
  ASSERT_TRUE(p.ok());
  auto dims = [](const std::string&) -> Result<std::vector<comp::ExprPtr>> {
    return std::vector<comp::ExprPtr>{comp::Expr::Var("n"),
                                      comp::Expr::Var("m")};
  };
  auto t = comp::TranslateLoops(p.value(), dims);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t.value().size(), 1u);
  EXPECT_EQ(t.value()[0].target, "C");
  const std::string q = t.value()[0].query->ToString();
  EXPECT_NE(q.find("tiled"), std::string::npos);
  EXPECT_NE(q.find("<-"), std::string::npos);  // range generators
}

class LoopEndToEnd : public ::testing::Test {
 protected:
  LoopEndToEnd() : ctx_(runtime::ClusterConfig{2, 2, 4}) {
    a_ = ctx_.RandomMatrix(16, 16, 8, 1).value();
    b_ = ctx_.RandomMatrix(16, 16, 8, 2).value();
    ctx_.Bind("A", a_);
    ctx_.Bind("B", b_);
    ctx_.BindScalar("n", int64_t{16});
    // Targets bound up front (they provide output shapes).
    ctx_.Bind("C", ctx_.RandomMatrix(16, 16, 8, 3, 0.0, 0.0).value());
    ctx_.Bind("V", ctx_.RandomVector(16, 8, 4, 0.0, 0.0).value());
  }

  Sac ctx_;
  storage::TiledMatrix a_, b_;
};

TEST_F(LoopEndToEnd, ElementwiseLoopMatchesKernels) {
  auto r = ctx_.EvalLoop(
      "for i = 0, n-1 do for j = 0, n-1 do C[i,j] := A[i,j] + B[i,j];");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto c = ctx_.ToLocal(ctx_.bindings().at("C").tiled).value();
  auto la_ = ctx_.ToLocal(a_).value();
  auto lb = ctx_.ToLocal(b_).value();
  for (int64_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c.data()[i], la_.data()[i] + lb.data()[i], 1e-12);
  }
}

TEST_F(LoopEndToEnd, MatrixMultiplyLoopUsesGroupByJoin) {
  auto r = ctx_.EvalLoop(
      "for i = 0, n-1 do for k = 0, n-1 do for j = 0, n-1 do"
      "  C[i,j] += A[i,k] * B[k,j];");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  // The translated comprehension is the Query (9) shape, so the 5.4 rule
  // fires -- the paper's DIABLO+SAC pipeline end to end.
  EXPECT_NE(r.value()[0].find("GroupByJoin"), std::string::npos)
      << r.value()[0];
  auto c = ctx_.ToLocal(ctx_.bindings().at("C").tiled).value();
  auto la_ = ctx_.ToLocal(a_).value();
  auto lb = ctx_.ToLocal(b_).value();
  la::Tile ref(16, 16);
  la::GemmAccum(la_, lb, &ref);
  for (int64_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(c.data()[i], ref.data()[i], 1e-9);
  }
}

TEST_F(LoopEndToEnd, RowSumLoop) {
  auto r = ctx_.EvalLoop(
      "for i = 0, n-1 do for j = 0, n-1 do V[i] += A[i,j];");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto v = ctx_.ToLocal(ctx_.bindings().at("V").vec).value();
  auto la_ = ctx_.ToLocal(a_).value();
  for (int64_t i = 0; i < 16; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 16; ++j) s += la_.At(i, j);
    ASSERT_NEAR(v[i], s, 1e-9);
  }
}

TEST_F(LoopEndToEnd, SequencedStatementsSeeEarlierResults) {
  // C := A + B, then C := C * 2 elementwise via a second nest.
  auto r = ctx_.EvalLoop(
      "for i = 0, n-1 do for j = 0, n-1 do C[i,j] := A[i,j] + B[i,j];\n"
      "for i = 0, n-1 do for j = 0, n-1 do C[i,j] := C[i,j] * 2.0;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);
  auto c = ctx_.ToLocal(ctx_.bindings().at("C").tiled).value();
  auto la_ = ctx_.ToLocal(a_).value();
  auto lb = ctx_.ToLocal(b_).value();
  for (int64_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c.data()[i], 2.0 * (la_.data()[i] + lb.data()[i]), 1e-12);
  }
}

TEST_F(LoopEndToEnd, TransposedWriteIndices) {
  auto r = ctx_.EvalLoop(
      "for i = 0, n-1 do for j = 0, n-1 do C[j,i] := A[i,j];");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto c = ctx_.ToLocal(ctx_.bindings().at("C").tiled).value();
  auto la_ = ctx_.ToLocal(a_).value();
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      ASSERT_EQ(c.At(j, i), la_.At(i, j));
    }
  }
}

TEST_F(LoopEndToEnd, UnboundTargetIsPlanError) {
  auto r = ctx_.EvalLoop("for i = 0, n-1 do X[i] := 1.0;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPlanError);
}

}  // namespace
}  // namespace sac
