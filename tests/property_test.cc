// Property-based tests: algebraic identities that must hold for the
// compiled distributed plans across a sweep of matrix geometries (square,
// rectangular, edge tiles, single-tile, many-tile). Each identity
// exercises a different combination of translation rules.
#include <cmath>

#include <gtest/gtest.h>

#include "src/api/algorithms.h"
#include "src/api/sac.h"
#include "src/la/kernels.h"

namespace sac {
namespace {

using storage::TiledMatrix;

struct Geometry {
  int64_t n;
  int64_t m;
  int64_t k;
  int64_t block;
};

void PrintTo(const Geometry& g, std::ostream* os) {
  *os << g.n << "x" << g.m << "x" << g.k << "/b" << g.block;
}

class AlgebraProperty : public ::testing::TestWithParam<Geometry> {
 protected:
  AlgebraProperty() : ctx_(runtime::ClusterConfig{2, 2, 4}) {}

  void ExpectSame(const TiledMatrix& a, const TiledMatrix& b, double tol) {
    auto d = storage::MaxAbsDiff(&ctx_.engine(), a, b);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_LE(d.value(), tol);
  }

  Sac ctx_;
};

TEST_P(AlgebraProperty, AdditionCommutes) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.m, g.block, 1).value();
  auto b = ctx_.RandomMatrix(g.n, g.m, g.block, 2).value();
  auto ab = algo::Add(&ctx_, a, b).value();
  auto ba = algo::Add(&ctx_, b, a).value();
  ExpectSame(ab, ba, 0.0);
}

TEST_P(AlgebraProperty, AdditionAssociates) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.m, g.block, 3).value();
  auto b = ctx_.RandomMatrix(g.n, g.m, g.block, 4).value();
  auto c = ctx_.RandomMatrix(g.n, g.m, g.block, 5).value();
  auto l = algo::Add(&ctx_, algo::Add(&ctx_, a, b).value(), c).value();
  auto r = algo::Add(&ctx_, a, algo::Add(&ctx_, b, c).value()).value();
  ExpectSame(l, r, 1e-12);
}

TEST_P(AlgebraProperty, SubtractionOfSelfIsZero) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.m, g.block, 6).value();
  auto z = algo::Sub(&ctx_, a, a).value();
  auto local = ctx_.ToLocal(z).value();
  for (int64_t i = 0; i < local.size(); ++i) {
    ASSERT_EQ(local.data()[i], 0.0);
  }
}

TEST_P(AlgebraProperty, TransposeIsInvolution) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.m, g.block, 7).value();
  auto att =
      algo::Transpose(&ctx_, algo::Transpose(&ctx_, a).value()).value();
  ExpectSame(a, att, 0.0);
}

TEST_P(AlgebraProperty, ProductTransposeReverses) {
  // (A B)^T == B^T A^T across the 5.4 and 5.1 rules.
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.k, g.block, 8).value();
  auto b = ctx_.RandomMatrix(g.k, g.m, g.block, 9).value();
  auto abt =
      algo::Transpose(&ctx_, algo::Multiply(&ctx_, a, b).value()).value();
  auto btat = algo::Multiply(&ctx_, algo::Transpose(&ctx_, b).value(),
                             algo::Transpose(&ctx_, a).value())
                  .value();
  ExpectSame(abt, btat, 1e-8);
}

TEST_P(AlgebraProperty, MultiplicationDistributesOverAddition) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.k, g.block, 10).value();
  auto b = ctx_.RandomMatrix(g.k, g.m, g.block, 11).value();
  auto c = ctx_.RandomMatrix(g.k, g.m, g.block, 12).value();
  auto l = algo::Multiply(&ctx_, a, algo::Add(&ctx_, b, c).value()).value();
  auto r = algo::Add(&ctx_, algo::Multiply(&ctx_, a, b).value(),
                     algo::Multiply(&ctx_, a, c).value())
               .value();
  ExpectSame(l, r, 1e-7);
}

TEST_P(AlgebraProperty, MultiplyAgreesWithLocalGemm) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.k, g.block, 13).value();
  auto b = ctx_.RandomMatrix(g.k, g.m, g.block, 14).value();
  auto dist = ctx_.ToLocal(algo::Multiply(&ctx_, a, b).value()).value();
  auto la_ = ctx_.ToLocal(a).value();
  auto lb = ctx_.ToLocal(b).value();
  la::Tile ref(g.n, g.m);
  la::GemmAccum(la_, lb, &ref);
  ASSERT_EQ(dist.rows(), ref.rows());
  for (int64_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(dist.data()[i], ref.data()[i], 1e-8);
  }
}

TEST_P(AlgebraProperty, MultiplyBtMatchesExplicitTranspose) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.k, g.block, 15).value();
  auto b = ctx_.RandomMatrix(g.m, g.k, g.block, 16).value();
  auto fused = algo::MultiplyBt(&ctx_, a, b).value();
  auto explicit_t =
      algo::Multiply(&ctx_, a, algo::Transpose(&ctx_, b).value()).value();
  ExpectSame(fused, explicit_t, 1e-8);
}

TEST_P(AlgebraProperty, MultiplyAtMatchesExplicitTranspose) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.k, g.n, g.block, 17).value();
  auto b = ctx_.RandomMatrix(g.k, g.m, g.block, 18).value();
  auto fused = algo::MultiplyAt(&ctx_, a, b).value();
  auto explicit_t =
      algo::Multiply(&ctx_, algo::Transpose(&ctx_, a).value(), b).value();
  ExpectSame(fused, explicit_t, 1e-8);
}

TEST_P(AlgebraProperty, RowSumsMatchMatVecWithOnes) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.m, g.block, 19).value();
  auto sums = ctx_.ToLocal(algo::RowSums(&ctx_, a).value()).value();
  auto ones = storage::VectorFromLocal(
                  &ctx_.engine(), std::vector<double>(g.m, 1.0), g.block)
                  .value();
  auto mv = ctx_.ToLocal(algo::MatVec(&ctx_, a, ones).value()).value();
  ASSERT_EQ(sums.size(), mv.size());
  for (size_t i = 0; i < sums.size(); ++i) {
    ASSERT_NEAR(sums[i], mv[i], 1e-9);
  }
}

TEST_P(AlgebraProperty, FrobeniusMatchesLocal) {
  const Geometry g = GetParam();
  auto a = ctx_.RandomMatrix(g.n, g.m, g.block, 20, -3.0, 3.0).value();
  auto dist = algo::FrobeniusSquared(&ctx_, a).value();
  auto local = ctx_.ToLocal(a).value();
  double ref = 0;
  for (int64_t i = 0; i < local.size(); ++i) {
    ref += local.data()[i] * local.data()[i];
  }
  EXPECT_NEAR(dist, ref, std::fabs(ref) * 1e-12 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AlgebraProperty,
    ::testing::Values(Geometry{8, 8, 8, 8},          // single tile
                      Geometry{16, 16, 16, 8},       // 2x2 grid
                      Geometry{24, 16, 20, 8},       // rectangular
                      Geometry{25, 13, 9, 8},        // edge tiles everywhere
                      Geometry{7, 5, 3, 8},          // smaller than one tile
                      Geometry{32, 32, 32, 4},       // many small tiles
                      Geometry{17, 33, 19, 16}));    // mixed

// ---- factorization convergence (the paper's Section 6 workload) -----------

TEST(FactorizationProperty, ErrorDecreasesOverIterations) {
  Sac ctx(runtime::ClusterConfig{2, 2, 4});
  const int64_t n = 48, k = 8, blk = 16;
  auto r = ctx.RandomSparseMatrix(n, n, blk, 31, 0.1, 5).value();
  algo::Factorization st{
      ctx.RandomMatrix(n, k, blk, 32, 0.0, 1.0).value(),
      ctx.RandomMatrix(n, k, blk, 33, 0.0, 1.0).value()};
  auto error = [&](const algo::Factorization& s) {
    auto pqt = algo::MultiplyBt(&ctx, s.p, s.q).value();
    auto e = algo::Sub(&ctx, r, pqt).value();
    return algo::FrobeniusSquared(&ctx, e).value();
  };
  double prev = error(st);
  for (int it = 0; it < 4; ++it) {
    st = algo::FactorizationStep(&ctx, r, st, 0.002, 0.02).value();
    const double cur = error(st);
    EXPECT_LT(cur, prev) << "iteration " << it;
    prev = cur;
  }
}

}  // namespace
}  // namespace sac
