// Fault-tolerance subsystem tests: FaultPlan parsing and determinism,
// retry-until-success with metered backoff, retries-exhausted surfacing,
// checkpoint lineage truncation, and loop auto-checkpointing.
#include "src/runtime/recovery.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/sac.h"
#include "src/runtime/engine.h"

namespace sac::runtime {
namespace {

ValueVec Ints(std::initializer_list<int64_t> xs) {
  ValueVec out;
  for (int64_t x : xs) out.push_back(VInt(x));
  return out;
}

ValueVec Sorted(ValueVec v) {
  std::sort(v.begin(), v.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return v;
}

recovery::FaultPlan Plan(const std::string& spec) {
  auto p = recovery::FaultPlan::Parse(spec);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? std::move(p).value() : recovery::FaultPlan();
}

// ---------------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesFullGrammar) {
  auto p = recovery::FaultPlan::Parse(
      "seed=7; mid-map@join:part=2:count=3:p=0.5; shuffle-serialize@*");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const std::string s = p.value().ToString();
  EXPECT_NE(s.find("mid-map@join"), std::string::npos) << s;
  EXPECT_NE(s.find("shuffle-serialize@*"), std::string::npos) << s;
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(recovery::FaultPlan::Parse("frobnicate@*").ok());
  EXPECT_FALSE(recovery::FaultPlan::Parse("mid-map").ok());
  EXPECT_FALSE(recovery::FaultPlan::Parse("mid-map@*:p=1.5").ok());
  EXPECT_FALSE(recovery::FaultPlan::Parse("mid-map@*:count=0").ok());
  EXPECT_FALSE(recovery::FaultPlan::Parse("mid-map@*:part=x").ok());
  EXPECT_FALSE(recovery::FaultPlan::Parse("seed=notanumber").ok());
}

TEST(FaultPlanTest, EmptyPlanNeverFires) {
  recovery::FaultPlan p;  // no rules
  for (int part = 0; part < 8; ++part) {
    EXPECT_TRUE(
        p.Check(recovery::FaultPoint::kMidMap, "map", part, 1).ok());
  }
  EXPECT_EQ(p.injected(), 0u);
}

TEST(FaultPlanTest, CountBoundsAttemptsAndStageSubstringMatches) {
  recovery::FaultPlan p = Plan("mid-map@square:part=0:count=2");
  // Attempts 1 and 2 of partition 0 fail; attempt 3 passes.
  EXPECT_EQ(p.Check(recovery::FaultPoint::kMidMap, "square", 0, 1).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(p.Check(recovery::FaultPoint::kMidMap, "square", 0, 2).code(),
            StatusCode::kCancelled);
  EXPECT_TRUE(p.Check(recovery::FaultPoint::kMidMap, "square", 0, 3).ok());
  // Other partitions, stages and points are untouched.
  EXPECT_TRUE(p.Check(recovery::FaultPoint::kMidMap, "square", 1, 1).ok());
  EXPECT_TRUE(p.Check(recovery::FaultPoint::kMidMap, "other", 0, 1).ok());
  EXPECT_TRUE(p.Check(recovery::FaultPoint::kPreRun, "square", 0, 1).ok());
  EXPECT_EQ(p.injected(recovery::FaultPoint::kMidMap), 2u);
}

TEST(FaultPlanTest, ProbabilisticRulesAreDeterministicPerSeed) {
  auto fires = [](recovery::FaultPlan& plan) {
    std::vector<int> hit;
    for (int part = 0; part < 64; ++part) {
      if (!plan.Check(recovery::FaultPoint::kMidMap, "map", part, 1).ok()) {
        hit.push_back(part);
      }
    }
    return hit;
  };
  recovery::FaultPlan a = Plan("seed=42;mid-map@*:count=1000000:p=0.5");
  recovery::FaultPlan b = Plan("seed=42;mid-map@*:count=1000000:p=0.5");
  recovery::FaultPlan c = Plan("seed=43;mid-map@*:count=1000000:p=0.5");
  const std::vector<int> ha = fires(a);
  EXPECT_EQ(ha, fires(b));            // same seed => same firing pattern
  EXPECT_NE(ha, fires(c));            // different seed => different pattern
  EXPECT_GT(ha.size(), 10u);          // p=0.5 over 64 draws
  EXPECT_LT(ha.size(), 54u);
}

// ---------------------------------------------------------------------------
// Retry with backoff
// ---------------------------------------------------------------------------

TEST(RecoveryTest, MidTaskFailureRetriesToIdenticalResult) {
  auto run = [](recovery::FaultPlan plan) {
    Engine eng(ClusterConfig{2, 2, 4});
    eng.set_fault_plan(std::move(plan));
    Dataset ds = eng.Parallelize(Ints({1, 2, 3, 4, 5, 6}), 3);
    auto mapped = eng.Map(
        ds, [](const Value& v) { return VInt(v.AsInt() * v.AsInt()); },
        "square");
    EXPECT_TRUE(mapped.ok()) << mapped.status().ToString();
    auto rows = eng.Collect(mapped.value());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return std::make_tuple(Sorted(rows.value()),
                           eng.metrics().faults_injected(),
                           eng.metrics().tasks_retried(),
                           eng.metrics().retry_wait_us());
  };
  auto [clean_rows, clean_faults, clean_retries, clean_wait] =
      run(recovery::FaultPlan());
  EXPECT_EQ(clean_faults, 0u);
  EXPECT_EQ(clean_retries, 0u);

  auto [rows, faults, retries, wait_us] =
      run(Plan("mid-map@square:part=0:count=1;mid-map@square:part=2:count=2"));
  EXPECT_EQ(rows, clean_rows);  // identical result despite 3 injected faults
  EXPECT_EQ(faults, 3u);
  EXPECT_EQ(retries, 3u);
  EXPECT_GT(wait_us, 0u);  // backoff time was metered
}

TEST(RecoveryTest, ExhaustedRetriesSurfaceRuntimeError) {
  Engine eng(ClusterConfig{2, 2, 4});
  eng.set_fault_plan(Plan("mid-map@square:part=1:count=1000"));
  Dataset ds = eng.Parallelize(Ints({1, 2, 3, 4}), 2);
  auto mapped = eng.Map(
      ds, [](const Value& v) { return VInt(v.AsInt() + 1); }, "square");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kRuntimeError);
  EXPECT_NE(mapped.status().message().find("failed after"),
            std::string::npos)
      << mapped.status().ToString();
  EXPECT_EQ(eng.metrics().faults_injected(),
            static_cast<uint64_t>(eng.config().max_task_attempts));
}

TEST(RecoveryTest, BackoffDelaysAreBoundedByConfig) {
  ClusterConfig cfg{2, 2, 4};
  cfg.max_task_attempts = 4;
  cfg.retry_base_delay_us = 100;
  cfg.retry_max_delay_us = 150;  // caps the exponential curve
  Engine eng(cfg);
  eng.set_fault_plan(Plan("pre-run@square:part=0:count=3"));
  Dataset ds = eng.Parallelize(Ints({1, 2}), 1);
  auto mapped =
      eng.Map(ds, [](const Value& v) { return v; }, "square");
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // Three retries, each waiting at most retry_max_delay_us.
  EXPECT_EQ(eng.metrics().tasks_retried(), 3u);
  EXPECT_LE(eng.metrics().retry_wait_us(), 3u * 150u);
  EXPECT_GE(eng.metrics().retry_wait_us(), 100u);
}

TEST(RecoveryTest, ShuffleFaultsRecoverAcrossAllPoints) {
  auto run = [](const char* spec) {
    Engine eng(ClusterConfig{2, 2, 4});
    if (spec != nullptr) eng.set_fault_plan(Plan(spec));
    ValueVec rows;
    for (int64_t i = 0; i < 40; ++i) {
      rows.push_back(VPair(VInt(i % 5), VInt(i)));
    }
    Dataset ds = eng.Parallelize(std::move(rows), 4);
    auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
      return VInt(a.AsInt() + b.AsInt());
    });
    EXPECT_TRUE(red.ok()) << red.status().ToString();
    auto out = eng.Collect(red.value());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return Sorted(out.value());
  };
  const ValueVec clean = run(nullptr);
  // One fault at each named point, including mid-serialization of a
  // shuffle write and after the reduce-side fetch.
  const ValueVec chaotic = run(
      "pre-run@reduceByKey:part=0:count=1;"
      "shuffle-serialize@reduceByKey:part=1:count=1;"
      "post-shuffle@reduceByKey:part=2:count=1");
  EXPECT_EQ(chaotic, clean);
}

TEST(RecoveryTest, DeterministicReplayOfSeededProbabilisticPlan) {
  auto run = [] {
    // A generous attempt budget: with p=0.4 per draw the chance of any
    // task exhausting 8 attempts is negligible (and, being seeded, fixed).
    ClusterConfig cfg{2, 2, 4};
    cfg.max_task_attempts = 8;
    Engine eng(cfg);
    eng.set_fault_plan(
        Plan("seed=99;pre-run@*:count=1000000:p=0.4"));
    ValueVec rows;
    for (int64_t i = 0; i < 32; ++i) {
      rows.push_back(VPair(VInt(i % 4), VInt(i)));
    }
    Dataset ds = eng.Parallelize(std::move(rows), 4);
    auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
      return VInt(a.AsInt() + b.AsInt());
    });
    EXPECT_TRUE(red.ok()) << red.status().ToString();
    auto out = eng.Collect(red.value());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_pair(Sorted(out.value()),
                          eng.metrics().faults_injected());
  };
  auto [rows_a, faults_a] = run();
  auto [rows_b, faults_b] = run();
  EXPECT_EQ(rows_a, rows_b);
  EXPECT_EQ(faults_a, faults_b);  // replay injects the exact same faults
  EXPECT_GT(faults_a, 0u);
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CheckpointTruncatesLineageAndRestoresFromSpill) {
  Engine eng(ClusterConfig{2, 2, 4});
  Dataset src = eng.Parallelize(Ints({1, 2, 3, 4, 5, 6, 7, 8}), 4);
  auto mapped = eng.Map(
      src, [](const Value& v) { return VInt(v.AsInt() * 3); }, "triple");
  ASSERT_TRUE(mapped.ok());
  Dataset ds = mapped.value();
  const ValueVec before = Sorted(eng.Collect(ds).value());

  ASSERT_TRUE(eng.Checkpoint(ds).ok());
  EXPECT_TRUE(ds->checkpointed());
  EXPECT_GT(eng.metrics().checkpoint_bytes(), 0u);
  EXPECT_TRUE(eng.VerifyLineage(ds).ok());

  // Recovery now reads the spill files instead of recomputing parents:
  // invalidate everything, recover, and check no map task re-ran.
  const uint64_t recomputed_before = eng.metrics().tasks_recomputed();
  for (int i = 0; i < ds->num_partitions(); ++i) ds->InvalidatePartition(i);
  ASSERT_TRUE(eng.Recover(ds).ok());
  EXPECT_EQ(Sorted(eng.Collect(ds).value()), before);
  EXPECT_GT(eng.metrics().checkpoint_restore_bytes(), 0u);
  EXPECT_EQ(eng.metrics().tasks_recomputed(), recomputed_before + 4);

  // Idempotent: a second checkpoint is a no-op.
  EXPECT_TRUE(eng.Checkpoint(ds).ok());
}

TEST(RecoveryTest, CheckpointedRecoveryUnderInjectedFaults) {
  Engine eng(ClusterConfig{2, 2, 4});
  Dataset src = eng.Parallelize(Ints({10, 20, 30, 40}), 2);
  auto mapped = eng.Map(
      src, [](const Value& v) { return VInt(v.AsInt() + 1); }, "bump");
  ASSERT_TRUE(mapped.ok());
  Dataset ds = mapped.value();
  const ValueVec before = Sorted(eng.Collect(ds).value());
  ASSERT_TRUE(eng.Checkpoint(ds).ok());

  // The restore task itself fails once and is retried.
  eng.set_fault_plan(Plan("pre-run@bump:part=0:count=1"));
  for (int i = 0; i < ds->num_partitions(); ++i) ds->InvalidatePartition(i);
  ASSERT_TRUE(eng.Recover(ds).ok());
  EXPECT_EQ(Sorted(eng.Collect(ds).value()), before);
  EXPECT_GE(eng.metrics().faults_injected(), 1u);
  EXPECT_GE(eng.metrics().tasks_retried(), 1u);
}

TEST(RecoveryTest, SacCheckpointByNameValidatesBinding) {
  Sac ctx(ClusterConfig{2, 2, 4});
  ctx.Bind("A", ctx.RandomMatrix(16, 16, 8, 1).value());
  ctx.BindScalar("s", 2.0);
  EXPECT_TRUE(ctx.Checkpoint("A").ok());
  EXPECT_FALSE(ctx.Checkpoint("nope").ok());
  EXPECT_FALSE(ctx.Checkpoint("s").ok());
}

TEST(RecoveryTest, LoopAutoCheckpointBoundsLineageAndPreservesResult) {
  const char* program =
      "for i = 0, n-1 do for j = 0, n-1 do C[i,j] := C[i,j] + A[i,j];";
  auto run = [&](int interval) {
    ClusterConfig cfg{2, 2, 4};
    cfg.checkpoint_interval = interval;
    Sac ctx(cfg);
    ctx.Bind("A", ctx.RandomMatrix(16, 16, 8, 1).value());
    ctx.Bind("C", ctx.RandomMatrix(16, 16, 8, 2, 0.0, 0.0).value());
    ctx.BindScalar("n", int64_t{16});
    auto r = ctx.EvalLoopIterated(program, 5);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto local = ctx.ToLocal(ctx.bindings().at("C").tiled);
    EXPECT_TRUE(local.ok());
    return std::make_pair(local.value(),
                          ctx.metrics().checkpoint_bytes());
  };
  auto [plain, plain_ckpt] = run(0);
  auto [ckpt, ckpt_bytes] = run(2);
  EXPECT_EQ(plain_ckpt, 0u);
  EXPECT_GT(ckpt_bytes, 0u);  // every 2nd rebind of C was checkpointed
  ASSERT_EQ(plain.vec().size(), ckpt.vec().size());
  for (size_t i = 0; i < plain.vec().size(); ++i) {
    ASSERT_EQ(plain.vec()[i], ckpt.vec()[i]);  // bit-identical
  }
}

}  // namespace
}  // namespace sac::runtime
