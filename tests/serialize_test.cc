#include "src/common/serialize.h"

#include <gtest/gtest.h>

namespace sac {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter w;
  w.PutU8(7);
  w.PutI64(-12345678901234LL);
  w.PutU32(99);
  w.PutF64(3.25);
  w.PutBool(true);
  w.PutString("hello");

  ByteReader r(w.buffer());
  EXPECT_EQ(r.GetU8().value(), 7);
  EXPECT_EQ(r.GetI64().value(), -12345678901234LL);
  EXPECT_EQ(r.GetU32().value(), 99u);
  EXPECT_EQ(r.GetF64().value(), 3.25);
  EXPECT_EQ(r.GetBool().value(), true);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripDoubleArray) {
  ByteWriter w;
  std::vector<double> data = {1.0, -2.5, 3.75, 0.0};
  w.PutF64Array(data.data(), data.size());
  ByteReader r(w.buffer());
  EXPECT_EQ(r.GetF64Array().value(), data);
}

TEST(SerializeTest, ReadPastEndFails) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.buffer());
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_FALSE(r.GetI64().ok());
  EXPECT_EQ(r.GetI64().status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, CorruptArrayLengthRejected) {
  ByteWriter w;
  w.PutU64(1'000'000'000ULL);  // claims a billion doubles
  ByteReader r(w.buffer());
  EXPECT_FALSE(r.GetF64Array().ok());
}

TEST(SerializeTest, EmptyStringAndArray) {
  ByteWriter w;
  w.PutString("");
  w.PutF64Array(nullptr, 0);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_TRUE(r.GetF64Array().value().empty());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace sac
