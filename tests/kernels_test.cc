#include "src/la/kernels.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/la/backend.h"
#include "src/la/fused.h"
#include "src/la/jvmlike.h"
#include "src/la/packed_gemm.h"
#include "src/la/tile.h"

namespace sac::la {
namespace {

Tile RandomTile(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  Tile t(r, c);
  t.FillRandom(&rng, -1.0, 1.0);
  return t;
}

/// Obviously correct reference gemm for oracle comparison.
Tile NaiveGemm(const Tile& a, const Tile& b) {
  Tile out(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (int64_t k = 0; k < a.cols(); ++k) s += a.At(i, k) * b.At(k, j);
      out.Set(i, j, s);
    }
  }
  return out;
}

TEST(TileTest, ConstructAndAccess) {
  Tile t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  t.Set(2, 3, 5.5);
  EXPECT_EQ(t.At(2, 3), 5.5);
  t.Add(2, 3, 1.5);
  EXPECT_EQ(t.At(2, 3), 7.0);
}

TEST(TileTest, EqualityIsElementwise) {
  Tile a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b.Set(1, 1, 1.0);
  EXPECT_FALSE(a == b);
}

TEST(KernelsTest, AddMatchesElementwise) {
  Tile a = RandomTile(7, 5, 1), b = RandomTile(7, 5, 2);
  Tile out;
  Add(a, b, &out);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(out.At(i, j), a.At(i, j) + b.At(i, j));
    }
  }
}

TEST(KernelsTest, SubMulAxpbyScale) {
  Tile a = RandomTile(4, 6, 3), b = RandomTile(4, 6, 4);
  Tile sub, mul, axpby, scale;
  Sub(a, b, &sub);
  Mul(a, b, &mul);
  Axpby(2.0, a, -3.0, b, &axpby);
  Scale(0.5, a, &scale);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(sub.data()[i], a.data()[i] - b.data()[i]);
    EXPECT_DOUBLE_EQ(mul.data()[i], a.data()[i] * b.data()[i]);
    EXPECT_DOUBLE_EQ(axpby.data()[i], 2.0 * a.data()[i] - 3.0 * b.data()[i]);
    EXPECT_DOUBLE_EQ(scale.data()[i], 0.5 * a.data()[i]);
  }
}

TEST(KernelsTest, AddInPlaceAccumulates) {
  Tile acc = RandomTile(3, 3, 5);
  Tile orig = acc;
  Tile t = RandomTile(3, 3, 6);
  AddInPlace(&acc, t);
  for (int64_t i = 0; i < acc.size(); ++i) {
    EXPECT_DOUBLE_EQ(acc.data()[i], orig.data()[i] + t.data()[i]);
  }
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, BlockedGemmMatchesNaive) {
  const auto [m, l, n] = GetParam();
  Tile a = RandomTile(m, l, 10 + m), b = RandomTile(l, n, 20 + n);
  Tile ref = NaiveGemm(a, b);
  Tile out(m, n);
  GemmAccum(a, b, &out);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], ref.data()[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 4, 4),
                      std::make_tuple(17, 9, 23), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 127, 3), std::make_tuple(128, 1, 128),
                      std::make_tuple(100, 100, 100)));

TEST(KernelsTest, GemmAccumulatesIntoExisting) {
  Tile a = RandomTile(5, 5, 7), b = RandomTile(5, 5, 8);
  Tile out(5, 5);
  out.Set(0, 0, 100.0);
  Tile ref = NaiveGemm(a, b);
  GemmAccum(a, b, &out);
  EXPECT_NEAR(out.At(0, 0), 100.0 + ref.At(0, 0), 1e-9);
}

TEST(KernelsTest, TransposeTwiceIsIdentity) {
  Tile a = RandomTile(13, 7, 9);
  Tile t, tt;
  Transpose(a, &t);
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 13);
  Transpose(t, &tt);
  EXPECT_TRUE(a == tt);
}

TEST(KernelsTest, TransposeElementMapping) {
  Tile a = RandomTile(40, 33, 11);
  Tile t;
  Transpose(a, &t);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(t.At(j, i), a.At(i, j));
    }
  }
}

TEST(KernelsTest, RowAndColSums) {
  Tile a = RandomTile(6, 9, 12);
  std::vector<double> rows(6), cols(9);
  RowSums(a, rows.data());
  ColSums(a, cols.data());
  double total = 0;
  for (int64_t i = 0; i < 6; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 9; ++j) s += a.At(i, j);
    EXPECT_NEAR(rows[i], s, 1e-12);
    total += s;
  }
  for (int64_t j = 0; j < 9; ++j) {
    double s = 0;
    for (int64_t i = 0; i < 6; ++i) s += a.At(i, j);
    EXPECT_NEAR(cols[j], s, 1e-12);
  }
  EXPECT_NEAR(TotalSum(a), total, 1e-12);
}

TEST(KernelsTest, MapAndZipElements) {
  Tile a = RandomTile(3, 5, 13), b = RandomTile(3, 5, 14);
  Tile mapped, zipped;
  MapElements(a, [](double x) { return x * x; }, &mapped);
  ZipElements(a, b, [](double x, double y) { return x - 2 * y; }, &zipped);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(mapped.data()[i], a.data()[i] * a.data()[i]);
    EXPECT_DOUBLE_EQ(zipped.data()[i], a.data()[i] - 2 * b.data()[i]);
  }
}

// ---- jvmlike kernels must agree with the fast kernels -------------------

TEST(JvmlikeTest, GenericAddMatchesFast) {
  Tile a = RandomTile(8, 8, 21), b = RandomTile(8, 8, 22);
  Tile fast, generic;
  Add(a, b, &fast);
  jvmlike::TileAdd(a, b, &generic);
  EXPECT_TRUE(fast == generic);
}

TEST(JvmlikeTest, GenericGemmMatchesFast) {
  Tile a = RandomTile(16, 12, 23), b = RandomTile(12, 9, 24);
  Tile fast(16, 9), generic(16, 9);
  GemmAccum(a, b, &fast);
  jvmlike::TileGemmAccum(a, b, &generic);
  for (int64_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], generic.data()[i], 1e-9);
  }
}

TEST(JvmlikeTest, GenericAxpbyAndTranspose) {
  Tile a = RandomTile(5, 7, 25), b = RandomTile(5, 7, 26);
  Tile fast, generic;
  Axpby(1.5, a, 2.5, b, &fast);
  jvmlike::TileAxpby(1.5, a, 2.5, b, &generic);
  EXPECT_TRUE(fast == generic);
  Tile ft, gt;
  Transpose(a, &ft);
  jvmlike::TileTranspose(a, &gt);
  EXPECT_TRUE(ft == gt);
}

// ---- kernel backends (docs/KERNELS.md) ----------------------------------
//
// Every registered backend must produce byte-identical results for the
// elementwise kernels and GEMM (all accumulate c(i,j) = C + sum_k
// ascending), and tolerance-equal results for the reductions (the generic
// backend's SIMD reduction may reassociate).

class BackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  const KernelBackend* be() const {
    const KernelBackend* b = FindBackend(GetParam());
    EXPECT_NE(b, nullptr);
    return b;
  }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values("generic", "packed", "jvmlike"));

TEST_P(BackendTest, NameRoundTrips) {
  EXPECT_EQ(std::string(be()->name()), GetParam());
  EXPECT_EQ(be(), GetBackend(be()->kind()));
}

TEST_P(BackendTest, ElementwiseByteIdenticalToGeneric) {
  const KernelBackend* g = GetBackend(BackendKind::kGeneric);
  Tile a = RandomTile(13, 11, 31), b = RandomTile(13, 11, 32);
  Tile ours, ref;
  be()->Add(a, b, &ours);
  g->Add(a, b, &ref);
  EXPECT_TRUE(ours == ref);
  be()->Sub(a, b, &ours);
  g->Sub(a, b, &ref);
  EXPECT_TRUE(ours == ref);
  be()->Mul(a, b, &ours);
  g->Mul(a, b, &ref);
  EXPECT_TRUE(ours == ref);
  be()->Axpby(1.25, a, -0.5, b, &ours);
  g->Axpby(1.25, a, -0.5, b, &ref);
  EXPECT_TRUE(ours == ref);
  be()->Scale(-2.0, a, &ours);
  g->Scale(-2.0, a, &ref);
  EXPECT_TRUE(ours == ref);
  be()->Transpose(a, &ours);
  g->Transpose(a, &ref);
  EXPECT_TRUE(ours == ref);
  Tile acc1 = RandomTile(13, 11, 33), acc2 = acc1;
  be()->AddInPlace(&acc1, a);
  g->AddInPlace(&acc2, a);
  EXPECT_TRUE(acc1 == acc2);
}

TEST_P(BackendTest, GemmEdgeShapesMatchOracleAndGeneric) {
  const KernelBackend* g = GetBackend(BackendKind::kGeneric);
  // Non-multiple-of-block dims, degenerate 1xN / Nx1, empty tiles, and one
  // shape above the packing threshold (min(m,n) >= 128).
  const std::tuple<int, int, int> shapes[] = {
      {65, 3, 65},   {65, 17, 65}, {1, 7, 5},      {5, 7, 1},
      {1, 1, 1},     {0, 5, 3},    {3, 0, 5},      {5, 3, 0},
      {63, 65, 64},  {8, 6, 8},    {130, 70, 134},
  };
  for (const auto& [m, l, n] : shapes) {
    SCOPED_TRACE(::testing::Message() << m << "x" << l << "x" << n);
    Tile a = RandomTile(m, l, 40 + m), b = RandomTile(l, n, 50 + n);
    Tile ours(m, n), ref(m, n);
    be()->GemmAccum(a, b, &ours);
    g->GemmAccum(a, b, &ref);
    EXPECT_TRUE(ours == ref) << "backend disagrees with generic";
    Tile oracle = NaiveGemm(a, b);
    for (int64_t i = 0; i < ours.size(); ++i) {
      EXPECT_NEAR(ours.data()[i], oracle.data()[i], 1e-9);
    }
  }
}

TEST_P(BackendTest, GemmAccumulatesIntoExistingOutput) {
  const KernelBackend* g = GetBackend(BackendKind::kGeneric);
  Tile a = RandomTile(130, 64, 60), b = RandomTile(64, 130, 61);
  Tile ours = RandomTile(130, 130, 62), ref = ours;
  be()->GemmAccum(a, b, &ours);
  g->GemmAccum(a, b, &ref);
  EXPECT_TRUE(ours == ref);
}

TEST_P(BackendTest, ReductionsMatchWithinTolerance) {
  Tile a = RandomTile(37, 29, 70);
  std::vector<double> rows(37), cols(29);
  be()->RowSums(a, rows.data());
  be()->ColSums(a, cols.data());
  double total = 0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    double s = 0;
    for (int64_t j = 0; j < a.cols(); ++j) s += a.At(i, j);
    EXPECT_NEAR(rows[i], s, 1e-12);
    total += s;
  }
  for (int64_t j = 0; j < a.cols(); ++j) {
    double s = 0;
    for (int64_t i = 0; i < a.rows(); ++i) s += a.At(i, j);
    EXPECT_NEAR(cols[j], s, 1e-12);
  }
  EXPECT_NEAR(be()->TotalSum(a), total, 1e-10);
}

TEST(BackendLookupTest, UnknownNameReturnsNull) {
  EXPECT_EQ(FindBackend("blas"), nullptr);
  EXPECT_EQ(FindBackend(""), nullptr);
}

TEST(PackedGemmTest, SmallShapesForwardToUnpacked) {
  EXPECT_FALSE(PackedGemmWouldPack(64, 64, 64));
  EXPECT_FALSE(PackedGemmWouldPack(512, 4, 512));  // k below microkernel
  EXPECT_TRUE(PackedGemmWouldPack(128, 8, 128));
  EXPECT_TRUE(PackedGemmWouldPack(512, 512, 512));
  EXPECT_GE(PackedGemmThreshold(), 1);
}

// ---- fused elementwise pipelines (src/la/fused.h) -----------------------
//
// A fused transposed read must be bit-identical to materializing the
// transpose and then running the plain kernel: same single arithmetic
// expression per element, just no temporary tile.

TEST(FusedTest, FusedZipMatchesTransposeThenOp) {
  Tile a = RandomTile(33, 65, 80);   // stored transposed: logical 65x33
  Tile b = RandomTile(65, 33, 81);
  Tile at;
  Transpose(a, &at);
  const struct {
    ZipOp op;
    double alpha, beta;
  } cases[] = {{ZipOp::kAdd, 1, 1},
               {ZipOp::kSub, 1, 1},
               {ZipOp::kMul, 1, 1},
               {ZipOp::kAxpby, 0.002, -1.5}};
  for (const auto& c : cases) {
    Tile fused, ref;
    FusedZip(c.op, c.alpha, c.beta, a, /*a_t=*/true, b, /*b_t=*/false,
             &fused);
    FusedZip(c.op, c.alpha, c.beta, at, false, b, false, &ref);
    EXPECT_TRUE(fused == ref);
  }
  // Both operands transposed.
  Tile b2 = RandomTile(33, 65, 82), b2t;
  Transpose(b2, &b2t);
  Tile fused, ref;
  FusedZip(ZipOp::kAdd, 1, 1, a, true, b2, true, &fused);
  Add(at, b2t, &ref);
  EXPECT_TRUE(fused == ref);
}

TEST(FusedTest, FusedMapAndScaleMatchTwoPass) {
  Tile a = RandomTile(47, 31, 83);
  Tile at;
  Transpose(a, &at);
  Tile fused, ref;
  FusedScale(0.25, a, true, &fused);
  Scale(0.25, at, &ref);
  EXPECT_TRUE(fused == ref);
  auto sq = [](double x) { return x * x; };
  FusedMapFn(sq, a, true, &fused);
  MapElements(at, sq, &ref);
  EXPECT_TRUE(fused == ref);
  auto sub2 = [](double x, double y) { return x - 2 * y; };
  Tile b = RandomTile(31, 47, 84);
  FusedZipFn(sub2, a, true, b, false, &fused);
  ZipElements(at, b, sub2, &ref);
  EXPECT_TRUE(fused == ref);
}

}  // namespace
}  // namespace sac::la
