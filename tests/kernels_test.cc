#include "src/la/kernels.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/la/jvmlike.h"
#include "src/la/tile.h"

namespace sac::la {
namespace {

Tile RandomTile(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  Tile t(r, c);
  t.FillRandom(&rng, -1.0, 1.0);
  return t;
}

/// Obviously correct reference gemm for oracle comparison.
Tile NaiveGemm(const Tile& a, const Tile& b) {
  Tile out(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (int64_t k = 0; k < a.cols(); ++k) s += a.At(i, k) * b.At(k, j);
      out.Set(i, j, s);
    }
  }
  return out;
}

TEST(TileTest, ConstructAndAccess) {
  Tile t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  t.Set(2, 3, 5.5);
  EXPECT_EQ(t.At(2, 3), 5.5);
  t.Add(2, 3, 1.5);
  EXPECT_EQ(t.At(2, 3), 7.0);
}

TEST(TileTest, EqualityIsElementwise) {
  Tile a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b.Set(1, 1, 1.0);
  EXPECT_FALSE(a == b);
}

TEST(KernelsTest, AddMatchesElementwise) {
  Tile a = RandomTile(7, 5, 1), b = RandomTile(7, 5, 2);
  Tile out;
  Add(a, b, &out);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(out.At(i, j), a.At(i, j) + b.At(i, j));
    }
  }
}

TEST(KernelsTest, SubMulAxpbyScale) {
  Tile a = RandomTile(4, 6, 3), b = RandomTile(4, 6, 4);
  Tile sub, mul, axpby, scale;
  Sub(a, b, &sub);
  Mul(a, b, &mul);
  Axpby(2.0, a, -3.0, b, &axpby);
  Scale(0.5, a, &scale);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(sub.data()[i], a.data()[i] - b.data()[i]);
    EXPECT_DOUBLE_EQ(mul.data()[i], a.data()[i] * b.data()[i]);
    EXPECT_DOUBLE_EQ(axpby.data()[i], 2.0 * a.data()[i] - 3.0 * b.data()[i]);
    EXPECT_DOUBLE_EQ(scale.data()[i], 0.5 * a.data()[i]);
  }
}

TEST(KernelsTest, AddInPlaceAccumulates) {
  Tile acc = RandomTile(3, 3, 5);
  Tile orig = acc;
  Tile t = RandomTile(3, 3, 6);
  AddInPlace(&acc, t);
  for (int64_t i = 0; i < acc.size(); ++i) {
    EXPECT_DOUBLE_EQ(acc.data()[i], orig.data()[i] + t.data()[i]);
  }
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, BlockedGemmMatchesNaive) {
  const auto [m, l, n] = GetParam();
  Tile a = RandomTile(m, l, 10 + m), b = RandomTile(l, n, 20 + n);
  Tile ref = NaiveGemm(a, b);
  Tile out(m, n);
  GemmAccum(a, b, &out);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], ref.data()[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 4, 4),
                      std::make_tuple(17, 9, 23), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 127, 3), std::make_tuple(128, 1, 128),
                      std::make_tuple(100, 100, 100)));

TEST(KernelsTest, GemmAccumulatesIntoExisting) {
  Tile a = RandomTile(5, 5, 7), b = RandomTile(5, 5, 8);
  Tile out(5, 5);
  out.Set(0, 0, 100.0);
  Tile ref = NaiveGemm(a, b);
  GemmAccum(a, b, &out);
  EXPECT_NEAR(out.At(0, 0), 100.0 + ref.At(0, 0), 1e-9);
}

TEST(KernelsTest, TransposeTwiceIsIdentity) {
  Tile a = RandomTile(13, 7, 9);
  Tile t, tt;
  Transpose(a, &t);
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 13);
  Transpose(t, &tt);
  EXPECT_TRUE(a == tt);
}

TEST(KernelsTest, TransposeElementMapping) {
  Tile a = RandomTile(40, 33, 11);
  Tile t;
  Transpose(a, &t);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(t.At(j, i), a.At(i, j));
    }
  }
}

TEST(KernelsTest, RowAndColSums) {
  Tile a = RandomTile(6, 9, 12);
  std::vector<double> rows(6), cols(9);
  RowSums(a, rows.data());
  ColSums(a, cols.data());
  double total = 0;
  for (int64_t i = 0; i < 6; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 9; ++j) s += a.At(i, j);
    EXPECT_NEAR(rows[i], s, 1e-12);
    total += s;
  }
  for (int64_t j = 0; j < 9; ++j) {
    double s = 0;
    for (int64_t i = 0; i < 6; ++i) s += a.At(i, j);
    EXPECT_NEAR(cols[j], s, 1e-12);
  }
  EXPECT_NEAR(TotalSum(a), total, 1e-12);
}

TEST(KernelsTest, MapAndZipElements) {
  Tile a = RandomTile(3, 5, 13), b = RandomTile(3, 5, 14);
  Tile mapped, zipped;
  MapElements(a, [](double x) { return x * x; }, &mapped);
  ZipElements(a, b, [](double x, double y) { return x - 2 * y; }, &zipped);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(mapped.data()[i], a.data()[i] * a.data()[i]);
    EXPECT_DOUBLE_EQ(zipped.data()[i], a.data()[i] - 2 * b.data()[i]);
  }
}

// ---- jvmlike kernels must agree with the fast kernels -------------------

TEST(JvmlikeTest, GenericAddMatchesFast) {
  Tile a = RandomTile(8, 8, 21), b = RandomTile(8, 8, 22);
  Tile fast, generic;
  Add(a, b, &fast);
  jvmlike::TileAdd(a, b, &generic);
  EXPECT_TRUE(fast == generic);
}

TEST(JvmlikeTest, GenericGemmMatchesFast) {
  Tile a = RandomTile(16, 12, 23), b = RandomTile(12, 9, 24);
  Tile fast(16, 9), generic(16, 9);
  GemmAccum(a, b, &fast);
  jvmlike::TileGemmAccum(a, b, &generic);
  for (int64_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], generic.data()[i], 1e-9);
  }
}

TEST(JvmlikeTest, GenericAxpbyAndTranspose) {
  Tile a = RandomTile(5, 7, 25), b = RandomTile(5, 7, 26);
  Tile fast, generic;
  Axpby(1.5, a, 2.5, b, &fast);
  jvmlike::TileAxpby(1.5, a, 2.5, b, &generic);
  EXPECT_TRUE(fast == generic);
  Tile ft, gt;
  Transpose(a, &ft);
  jvmlike::TileTranspose(a, &gt);
  EXPECT_TRUE(ft == gt);
}

}  // namespace
}  // namespace sac::la
