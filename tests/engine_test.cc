#include "src/runtime/engine.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sac::runtime {
namespace {

ValueVec Ints(std::initializer_list<int64_t> xs) {
  ValueVec out;
  for (int64_t x : xs) out.push_back(VInt(x));
  return out;
}

/// Sorts a collected result for order-insensitive comparison.
ValueVec Sorted(ValueVec v) {
  std::sort(v.begin(), v.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return v;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : eng_(ClusterConfig{2, 2, 4}) {}
  Engine eng_;
};

TEST_F(EngineTest, ParallelizeAndCollect) {
  Dataset ds = eng_.Parallelize(Ints({1, 2, 3, 4, 5}), 3);
  EXPECT_EQ(ds->num_partitions(), 3);
  auto rows = eng_.Collect(ds);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Sorted(rows.value()), Sorted(Ints({1, 2, 3, 4, 5})));
  EXPECT_EQ(eng_.Count(ds).value(), 5);
}

TEST_F(EngineTest, MapFilterFlatMap) {
  Dataset ds = eng_.Parallelize(Ints({1, 2, 3, 4}), 2);
  auto mapped = eng_.Map(ds, [](const Value& v) {
    return VInt(v.AsInt() * 10);
  });
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(Sorted(eng_.Collect(mapped.value()).value()),
            Sorted(Ints({10, 20, 30, 40})));

  auto filtered = eng_.Filter(mapped.value(), [](const Value& v) {
    return v.AsInt() > 15;
  });
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(Sorted(eng_.Collect(filtered.value()).value()),
            Sorted(Ints({20, 30, 40})));

  auto doubled = eng_.FlatMap(ds, [](const Value& v, ValueVec* out) {
    out->push_back(v);
    out->push_back(VInt(-v.AsInt()));
  });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(eng_.Count(doubled.value()).value(), 8);
}

TEST_F(EngineTest, ReduceByKeySumsPerKey) {
  ValueVec rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(VPair(VInt(i % 7), VInt(i)));
  }
  Dataset ds = eng_.Parallelize(std::move(rows), 5);
  auto red = eng_.ReduceByKey(ds, [](const Value& a, const Value& b) {
    return VInt(a.AsInt() + b.AsInt());
  });
  ASSERT_TRUE(red.ok());
  auto out = eng_.Collect(red.value()).value();
  ASSERT_EQ(out.size(), 7u);
  int64_t expected[7] = {0};
  for (int i = 0; i < 100; ++i) expected[i % 7] += i;
  for (const Value& row : out) {
    EXPECT_EQ(row.At(1).AsInt(), expected[row.At(0).AsInt()]);
  }
}

TEST_F(EngineTest, ReduceByKeyShufflesLessThanGroupByKey) {
  ValueVec rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back(VPair(VInt(i % 3), VDouble(i)));
  }
  Dataset ds = eng_.Parallelize(std::move(rows), 8);

  eng_.metrics().Reset();
  ASSERT_TRUE(eng_.ReduceByKey(ds, [](const Value& a, const Value& b) {
                     return VDouble(a.AsDouble() + b.AsDouble());
                   }).ok());
  const uint64_t reduce_bytes = eng_.metrics().shuffle_bytes();

  eng_.metrics().Reset();
  ASSERT_TRUE(eng_.GroupByKey(ds).ok());
  const uint64_t group_bytes = eng_.metrics().shuffle_bytes();

  // Map-side combine leaves at most keys*partitions records to shuffle.
  EXPECT_LT(reduce_bytes * 10, group_bytes);
}

TEST_F(EngineTest, GroupByKeyCollectsAllValues) {
  ValueVec rows;
  for (int i = 0; i < 20; ++i) rows.push_back(VPair(VInt(i % 4), VInt(i)));
  Dataset ds = eng_.Parallelize(std::move(rows), 3);
  auto grouped = eng_.GroupByKey(ds);
  ASSERT_TRUE(grouped.ok());
  auto out = eng_.Collect(grouped.value()).value();
  ASSERT_EQ(out.size(), 4u);
  for (const Value& row : out) {
    const auto& vals = row.At(1).AsList();
    EXPECT_EQ(vals.size(), 5u);
    for (const Value& v : vals) {
      EXPECT_EQ(v.AsInt() % 4, row.At(0).AsInt());
    }
  }
}

TEST_F(EngineTest, JoinMatchesKeys) {
  Dataset a = eng_.Parallelize(
      {VPair(VInt(1), Value::Str("a")), VPair(VInt(2), Value::Str("b")),
       VPair(VInt(3), Value::Str("c"))},
      2);
  Dataset b = eng_.Parallelize(
      {VPair(VInt(2), VInt(20)), VPair(VInt(3), VInt(30)),
       VPair(VInt(3), VInt(31)), VPair(VInt(4), VInt(40))},
      3);
  auto joined = eng_.Join(a, b);
  ASSERT_TRUE(joined.ok());
  auto out = Sorted(eng_.Collect(joined.value()).value());
  ASSERT_EQ(out.size(), 3u);  // 2 matches once, 3 matches twice
  EXPECT_EQ(out[0].At(0).AsInt(), 2);
  EXPECT_EQ(out[0].At(1).At(0).AsString(), "b");
  EXPECT_EQ(out[0].At(1).At(1).AsInt(), 20);
  EXPECT_EQ(out[1].At(0).AsInt(), 3);
  EXPECT_EQ(out[2].At(0).AsInt(), 3);
}

TEST_F(EngineTest, CoGroupIncludesUnmatchedKeys) {
  Dataset a = eng_.Parallelize({VPair(VInt(1), VInt(10))}, 2);
  Dataset b = eng_.Parallelize({VPair(VInt(2), VInt(20))}, 2);
  auto cg = eng_.CoGroup(a, b);
  ASSERT_TRUE(cg.ok());
  auto out = Sorted(eng_.Collect(cg.value()).value());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].At(1).At(0).AsList().size(), 1u);
  EXPECT_EQ(out[0].At(1).At(1).AsList().size(), 0u);
  EXPECT_EQ(out[1].At(1).At(0).AsList().size(), 0u);
  EXPECT_EQ(out[1].At(1).At(1).AsList().size(), 1u);
}

TEST_F(EngineTest, UnionConcatenates) {
  Dataset a = eng_.Parallelize(Ints({1, 2}), 2);
  Dataset b = eng_.Parallelize(Ints({3}), 1);
  auto u = eng_.Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value()->num_partitions(), 3);
  EXPECT_EQ(Sorted(eng_.Collect(u.value()).value()), Sorted(Ints({1, 2, 3})));
}

TEST_F(EngineTest, WideOpRejectsNonPairRows) {
  Dataset ds = eng_.Parallelize(Ints({1, 2, 3}), 2);
  auto red = eng_.ReduceByKey(ds, [](const Value& a, const Value&) {
    return a;
  });
  EXPECT_FALSE(red.ok());
  EXPECT_EQ(red.status().code(), StatusCode::kRuntimeError);
}

TEST_F(EngineTest, ShuffleAccountsBytes) {
  ValueVec rows;
  for (int i = 0; i < 50; ++i) rows.push_back(VPair(VInt(i), VDouble(i)));
  Dataset ds = eng_.Parallelize(std::move(rows), 4);
  eng_.metrics().Reset();
  ASSERT_TRUE(eng_.PartitionBy(ds).ok());
  EXPECT_GT(eng_.metrics().shuffle_bytes(), 0u);
  EXPECT_EQ(eng_.metrics().shuffle_records(), 50u);
  EXPECT_GT(eng_.metrics().cross_executor_bytes(), 0u);
  EXPECT_LE(eng_.metrics().cross_executor_bytes(),
            eng_.metrics().shuffle_bytes());
}

// ---- lineage-based fault recovery ----------------------------------------

TEST_F(EngineTest, RecoversLostNarrowPartition) {
  Dataset src = eng_.Parallelize(Ints({0, 1, 2, 3, 4, 5, 6, 7}), 4);
  auto mapped = eng_.Map(src, [](const Value& v) {
    return VInt(v.AsInt() + 100);
  });
  ASSERT_TRUE(mapped.ok());
  Dataset ds = mapped.value();
  const ValueVec before = Sorted(eng_.Collect(ds).value());

  ds->InvalidatePartition(1);
  ds->InvalidatePartition(3);
  EXPECT_FALSE(ds->IsAvailable(1));
  eng_.metrics().Reset();
  const ValueVec after = Sorted(eng_.Collect(ds).value());
  EXPECT_EQ(before, after);
  EXPECT_GE(eng_.metrics().tasks_recomputed(), 2u);
}

TEST_F(EngineTest, RecoversLostShufflePartition) {
  ValueVec rows;
  for (int i = 0; i < 60; ++i) rows.push_back(VPair(VInt(i % 10), VInt(1)));
  Dataset src = eng_.Parallelize(std::move(rows), 4);
  auto red = eng_.ReduceByKey(src, [](const Value& a, const Value& b) {
    return VInt(a.AsInt() + b.AsInt());
  });
  ASSERT_TRUE(red.ok());
  Dataset ds = red.value();
  const ValueVec before = Sorted(eng_.Collect(ds).value());
  for (int i = 0; i < ds->num_partitions(); ++i) ds->InvalidatePartition(i);
  const ValueVec after = Sorted(eng_.Collect(ds).value());
  EXPECT_EQ(before, after);
}

TEST_F(EngineTest, RecoversThroughChainedLineage) {
  Dataset src = eng_.Parallelize(Ints({1, 2, 3, 4, 5, 6}), 3);
  auto m1 = eng_.Map(src, [](const Value& v) { return VInt(v.AsInt() * 2); });
  ASSERT_TRUE(m1.ok());
  auto m2 = eng_.Map(m1.value(),
                     [](const Value& v) { return VInt(v.AsInt() + 1); });
  ASSERT_TRUE(m2.ok());
  // Lose the same partition at both levels; recovery must chain.
  m1.value()->InvalidatePartition(2);
  m2.value()->InvalidatePartition(2);
  const ValueVec after = Sorted(eng_.Collect(m2.value()).value());
  EXPECT_EQ(after, Sorted(Ints({3, 5, 7, 9, 11, 13})));
}

TEST_F(EngineTest, GeneratedSourceRegenerates) {
  auto gen = eng_.GeneratePartitions(
      3,
      [](int p, Partition* out) {
        out->push_back(VInt(p * 10));
        return Status::OK();
      },
      "testsrc");
  ASSERT_TRUE(gen.ok());
  Dataset ds = gen.value();
  ds->InvalidatePartition(0);
  const ValueVec rows = Sorted(eng_.Collect(ds).value());
  EXPECT_EQ(rows, Sorted(Ints({0, 10, 20})));
}

TEST_F(EngineTest, DeterministicReduceOrderAcrossRuns) {
  // Float addition is order-sensitive; the engine promises a deterministic
  // fold order, so two identical runs must agree bit-for-bit.
  auto run = [&]() -> ValueVec {
    ValueVec rows;
    for (int i = 0; i < 500; ++i) {
      rows.push_back(VPair(VInt(i % 5), VDouble(1.0 / (1 + i))));
    }
    Engine eng(ClusterConfig{3, 2, 6});
    Dataset ds = eng.Parallelize(std::move(rows), 6);
    auto red = eng.ReduceByKey(ds, [](const Value& a, const Value& b) {
      return VDouble(a.AsDouble() + b.AsDouble());
    });
    return Sorted(eng.Collect(red.value()).value());
  };
  const ValueVec a = run(), b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i])) << a[i].ToString() << " vs "
                                   << b[i].ToString();
  }
}

}  // namespace
}  // namespace sac::runtime
