// Distributed-runtime tests (docs/DISTRIBUTED.md): frame codec round
// trips and typed corruption errors (truncation fuzz, CRC flips, bad
// magic, oversized payloads), loopback/TCP transport equivalence and
// byte accounting, the worker bucket store, coordinator placement and
// liveness, and engine-level distributed shuffles -- including the
// byte-identity guarantee (single-process == loopback == TCP) and
// lineage re-execution after an induced worker death.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dist/coordinator.h"
#include "src/dist/protocol.h"
#include "src/dist/worker.h"
#include "src/net/frame.h"
#include "src/net/loopback.h"
#include "src/net/tcp.h"
#include "src/runtime/engine.h"

namespace sac::runtime {
namespace {

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

net::Frame TestFrame(uint32_t type, uint64_t seq, size_t payload_len) {
  net::Frame f;
  f.type = type;
  f.seq = seq;
  f.payload.reserve(payload_len);
  for (size_t i = 0; i < payload_len; ++i) {
    f.payload.push_back(static_cast<uint8_t>((i * 131 + 7) & 0xff));
  }
  return f;
}

TEST(FrameCodecTest, RoundTrip) {
  const net::Frame f = TestFrame(42, 9001, 257);
  std::vector<uint8_t> wire;
  net::EncodeFrame(f, &wire);
  ASSERT_EQ(wire.size(), net::EncodedSize(f));

  auto back = net::DecodeFrame(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().type, f.type);
  EXPECT_EQ(back.value().seq, f.seq);
  EXPECT_EQ(back.value().payload, f.payload);
}

TEST(FrameCodecTest, EmptyPayloadRoundTrip) {
  const net::Frame f = TestFrame(1, 1, 0);
  std::vector<uint8_t> wire;
  net::EncodeFrame(f, &wire);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes);
  auto back = net::DecodeFrame(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().payload.empty());
}

TEST(FrameCodecTest, EveryTruncationFails) {
  const net::Frame f = TestFrame(7, 3, 64);
  std::vector<uint8_t> wire;
  net::EncodeFrame(f, &wire);
  // Every strict prefix must fail typed -- never crash, never succeed.
  for (size_t n = 0; n < wire.size(); ++n) {
    auto r = net::DecodeFrame(wire.data(), n);
    ASSERT_FALSE(r.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "prefix " << n;
  }
  // Trailing garbage is an error too: one buffer = one frame.
  wire.push_back(0);
  EXPECT_FALSE(net::DecodeFrame(wire).ok());
}

TEST(FrameCodecTest, EveryPayloadCorruptionFails) {
  const net::Frame f = TestFrame(7, 3, 48);
  std::vector<uint8_t> wire;
  net::EncodeFrame(f, &wire);
  // Flip one bit in each payload byte: the CRC must catch all of them.
  for (size_t i = net::kFrameHeaderBytes; i < wire.size(); ++i) {
    std::vector<uint8_t> bad = wire;
    bad[i] ^= 0x40;
    auto r = net::DecodeFrame(bad);
    ASSERT_FALSE(r.ok()) << "corruption at byte " << i << " undetected";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
}

TEST(FrameCodecTest, BadMagicIsDataLoss) {
  const net::Frame f = TestFrame(7, 3, 8);
  std::vector<uint8_t> wire;
  net::EncodeFrame(f, &wire);
  wire[0] ^= 0xff;
  auto r = net::DecodeFrame(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, OversizedPayloadIsInvalidArgument) {
  const net::Frame f = TestFrame(7, 3, 100);
  std::vector<uint8_t> wire;
  net::EncodeFrame(f, &wire);
  // With a 64-byte cap, the honest 100-byte length field is rejected
  // before any payload allocation.
  auto r = net::DecodeFrame(wire.data(), wire.size(), /*max_payload=*/64);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto h = net::DecodeFrameHeader(wire.data(), wire.size(),
                                  /*max_payload=*/64);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodecTest, CrcMatchesKnownVector) {
  // The IEEE check value: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(net::Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

// ---------------------------------------------------------------------------
// Transports: loopback and TCP must be behaviorally interchangeable
// ---------------------------------------------------------------------------

net::Frame EchoHandler(const net::Frame& req) {
  net::Frame resp;
  resp.type = req.type + 1;
  resp.payload = req.payload;
  return resp;
}

TEST(TransportTest, LoopbackEchoAndCounters) {
  net::LoopbackTransport t;
  ASSERT_EQ(t.AddPeer(EchoHandler), 0);
  ASSERT_EQ(t.num_peers(), 1);

  const net::Frame req = TestFrame(10, 0, 300);
  auto resp = t.Call(0, req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().type, 11u);
  EXPECT_EQ(resp.value().payload, req.payload);
  // Both directions ran through the real codec, so the counters are
  // exact wire sizes.
  EXPECT_EQ(t.bytes_sent(), net::EncodedSize(req));
  EXPECT_EQ(t.bytes_received(), net::EncodedSize(resp.value()));
}

TEST(TransportTest, LoopbackPeerDownIsUnavailable) {
  net::LoopbackTransport t;
  t.AddPeer(EchoHandler);
  t.SetPeerDown(0, true);
  auto r = t.Call(0, TestFrame(1, 0, 4));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  t.SetPeerDown(0, false);
  EXPECT_TRUE(t.Call(0, TestFrame(1, 0, 4)).ok());
}

TEST(TransportTest, LoopbackUnknownPeerIsInvalidArgument) {
  net::LoopbackTransport t;
  t.AddPeer(EchoHandler);
  EXPECT_EQ(t.Call(5, TestFrame(1, 0, 0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TransportTest, TcpEchoLargePayload) {
  net::TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  net::TcpTransport t({"127.0.0.1:" + std::to_string(server.port())});

  const net::Frame req = TestFrame(10, 0, 1 << 20);  // 1 MiB
  auto resp = t.Call(0, req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().type, 11u);
  EXPECT_EQ(resp.value().payload, req.payload);
  EXPECT_EQ(t.bytes_sent(), net::EncodedSize(req));
  EXPECT_EQ(t.bytes_received(), net::EncodedSize(resp.value()));
}

TEST(TransportTest, TcpReusesConnectionAcrossCalls) {
  net::TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  net::TcpTransport t({"127.0.0.1:" + std::to_string(server.port())});
  uint64_t total_sent = 0;
  for (int i = 0; i < 20; ++i) {
    const net::Frame req = TestFrame(2, 0, 100 + i);
    auto resp = t.Call(0, req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    total_sent += net::EncodedSize(req);
  }
  EXPECT_EQ(t.bytes_sent(), total_sent);
}

TEST(TransportTest, TcpConnectRefusedIsUnavailable) {
  // Bind-then-close to get a port nothing listens on.
  int port;
  {
    net::TcpServer probe(EchoHandler);
    ASSERT_TRUE(probe.Start(0).ok());
    port = probe.port();
  }
  net::TcpTransport t({"127.0.0.1:" + std::to_string(port)});
  auto r = t.Call(0, TestFrame(1, 0, 8));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(TransportTest, LoopbackAndTcpAreByteIdentical) {
  // The headline transport contract: the same request through either
  // transport yields the same response payload and the same wire-byte
  // accounting (the loopback runs the full codec both ways on purpose).
  net::LoopbackTransport lo;
  lo.AddPeer(EchoHandler);
  net::TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  net::TcpTransport tcp({"127.0.0.1:" + std::to_string(server.port())});

  for (size_t len : {size_t{0}, size_t{1}, size_t{255}, size_t{4096}}) {
    const net::Frame req = TestFrame(20, 0, len);
    auto a = lo.Call(0, req);
    auto b = tcp.Call(0, req);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().payload, b.value().payload) << "len " << len;
  }
  EXPECT_EQ(lo.bytes_sent(), tcp.bytes_sent());
  EXPECT_EQ(lo.bytes_received(), tcp.bytes_received());
}

// ---------------------------------------------------------------------------
// Worker bucket store (driven through the same frames the wire carries)
// ---------------------------------------------------------------------------

net::Frame PutFrame(const dist::BucketId& id, const std::string& bytes) {
  net::Frame f;
  f.type = dist::kPutBucket;
  f.payload.reserve(dist::kBucketIdBytes + bytes.size());
  ByteWriter w(&f.payload);
  dist::EncodeBucketId(id, &w);
  w.PutRaw(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  return f;
}

net::Frame GetFrame(const dist::BucketId& id) {
  net::Frame f;
  f.type = dist::kGetBucket;
  f.payload.reserve(dist::kBucketIdBytes);
  ByteWriter w(&f.payload);
  dist::EncodeBucketId(id, &w);
  return f;
}

std::string PayloadString(const net::Frame& f) {
  return std::string(f.payload.begin(), f.payload.end());
}

TEST(DistWorkerTest, PutGetOverwriteDrop) {
  dist::WorkerState w;
  const dist::BucketId id{7, 0, 1, 2};

  EXPECT_EQ(w.Handle(PutFrame(id, "hello")).type, dist::kPutBucketOk);
  EXPECT_EQ(w.num_buckets(), 1u);
  EXPECT_EQ(w.hosted_bytes(), 5u);

  net::Frame got = w.Handle(GetFrame(id));
  ASSERT_EQ(got.type, dist::kGetBucketOk);
  EXPECT_EQ(PayloadString(got), "hello");

  // Overwrite is idempotent last-write-wins (lineage re-push case).
  EXPECT_EQ(w.Handle(PutFrame(id, "goodbye!")).type, dist::kPutBucketOk);
  EXPECT_EQ(w.num_buckets(), 1u);
  EXPECT_EQ(w.hosted_bytes(), 8u);
  EXPECT_EQ(PayloadString(w.Handle(GetFrame(id))), "goodbye!");

  // Drop frees only the named shuffle.
  EXPECT_EQ(w.Handle(PutFrame({8, 0, 1, 2}, "other")).type,
            dist::kPutBucketOk);
  net::Frame drop;
  drop.type = dist::kDropShuffle;
  ByteWriter dw(&drop.payload);
  dw.PutU64(7);
  EXPECT_EQ(w.Handle(drop).type, dist::kDropShuffleOk);
  EXPECT_EQ(w.num_buckets(), 1u);
  EXPECT_EQ(w.hosted_bytes(), 5u);
}

TEST(DistWorkerTest, MissingBucketIsDataLoss) {
  dist::WorkerState w;
  net::Frame resp = w.Handle(GetFrame({99, 0, 0, 0}));
  ASSERT_EQ(resp.type, static_cast<uint32_t>(dist::kError));
  EXPECT_EQ(dist::StatusFromFrame(resp).code(), StatusCode::kDataLoss);
}

TEST(DistWorkerTest, PingReportsVitals) {
  dist::WorkerState w;
  w.Handle(PutFrame({1, 0, 0, 0}, "abc"));
  net::Frame ping;
  ping.type = dist::kPing;
  net::Frame resp = w.Handle(ping);
  ASSERT_EQ(resp.type, dist::kPingOk);
  ByteReader r(resp.payload);
  auto info = dist::DecodePingInfo(&r);
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info.value().pid, 0u);
  EXPECT_EQ(info.value().num_buckets, 1u);
  EXPECT_EQ(info.value().hosted_bytes, 3u);
}

TEST(DistWorkerTest, FailAfterBudgetTurnsUnavailable) {
  dist::WorkerState w;
  w.FailAfter(2);
  EXPECT_EQ(w.Handle(PutFrame({1, 0, 0, 0}, "a")).type, dist::kPutBucketOk);
  EXPECT_EQ(w.Handle(PutFrame({1, 0, 0, 1}, "b")).type, dist::kPutBucketOk);
  net::Frame resp = w.Handle(GetFrame({1, 0, 0, 0}));
  ASSERT_EQ(resp.type, static_cast<uint32_t>(dist::kError));
  EXPECT_EQ(dist::StatusFromFrame(resp).code(), StatusCode::kUnavailable);
  // Dead is dead: every later request fails too.
  EXPECT_EQ(w.Handle(GetFrame({1, 0, 0, 1})).type,
            static_cast<uint32_t>(dist::kError));
}

TEST(DistWorkerTest, UnknownTypeIsError) {
  dist::WorkerState w;
  net::Frame junk;
  junk.type = 777;
  net::Frame resp = w.Handle(junk);
  ASSERT_EQ(resp.type, static_cast<uint32_t>(dist::kError));
  EXPECT_EQ(dist::StatusFromFrame(resp).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Coordinator: placement, liveness, bucket RPC recovery
// ---------------------------------------------------------------------------

struct Cluster {
  std::vector<std::unique_ptr<dist::WorkerState>> workers;
  net::LoopbackTransport* transport = nullptr;  // owned by coord
  std::unique_ptr<Metrics> totals = std::make_unique<Metrics>();
  std::unique_ptr<dist::Coordinator> coord;
};

Cluster MakeCluster(int n, dist::CoordinatorOptions opts) {
  Cluster c;
  auto t = std::make_unique<net::LoopbackTransport>();
  c.transport = t.get();
  for (int i = 0; i < n; ++i) {
    c.workers.push_back(std::make_unique<dist::WorkerState>());
    dist::WorkerState* w = c.workers.back().get();
    t->AddPeer([w](const net::Frame& f) { return w->Handle(f); });
  }
  opts.retry_base_delay_us = 0;  // keep tests fast
  c.coord = std::make_unique<dist::Coordinator>(std::move(t), opts,
                                                c.totals.get(), nullptr);
  EXPECT_TRUE(c.coord->ConnectAll().ok());
  return c;
}

TEST(CoordinatorTest, PlacementReroutesOnDeath) {
  dist::CoordinatorOptions opts;
  opts.num_executors = 6;
  opts.heartbeat_interval_ms = 0;
  Cluster c = MakeCluster(3, opts);

  EXPECT_EQ(c.coord->live_workers(), 3);
  EXPECT_EQ(c.coord->WorkerOf(0).value(), 0);
  EXPECT_EQ(c.coord->WorkerOf(1).value(), 1);
  EXPECT_EQ(c.coord->WorkerOf(2).value(), 2);
  EXPECT_EQ(c.coord->WorkerOf(3).value(), 0);

  const uint64_t epoch0 = c.coord->placement_epoch();
  EXPECT_TRUE(c.coord->MarkDead(1, "test"));
  EXPECT_FALSE(c.coord->MarkDead(1, "test"));  // idempotent
  EXPECT_EQ(c.coord->live_workers(), 2);
  EXPECT_GT(c.coord->placement_epoch(), epoch0);
  EXPECT_EQ(c.totals->Snapshot().workers_lost, 1u);

  // Every executor still maps to a live worker.
  for (int e = 0; e < 6; ++e) {
    int w = c.coord->WorkerOf(e).value();
    EXPECT_TRUE(w == 0 || w == 2) << "executor " << e << " -> " << w;
  }

  c.coord->MarkDead(0, "test");
  c.coord->MarkDead(2, "test");
  EXPECT_EQ(c.coord->WorkerOf(0).status().code(),
            StatusCode::kUnavailable);
}

TEST(CoordinatorTest, SweepDetectsSilentWorker) {
  dist::CoordinatorOptions opts;
  opts.num_executors = 3;
  opts.heartbeat_interval_ms = 0;  // no background thread: tests drive it
  opts.heartbeat_timeout_ms = 3;
  opts.max_attempts = 1;  // a sweep probe must not itself mark-dead-retry
  Cluster c = MakeCluster(3, opts);

  c.transport->SetPeerDown(2, true);
  // interval=0 sweeps accumulate at least 1ms of silence each; three
  // misses cross the 3ms timeout.
  c.coord->SweepOnce();
  EXPECT_EQ(c.coord->live_workers(), 3);  // silent, not yet dead
  c.coord->SweepOnce();
  c.coord->SweepOnce();
  EXPECT_EQ(c.coord->live_workers(), 2);
  EXPECT_EQ(c.totals->Snapshot().workers_lost, 1u);

  // A recovered-but-already-declared-dead worker stays dead (placement
  // stability; lineage already re-executed around it).
  c.transport->SetPeerDown(2, false);
  c.coord->SweepOnce();
  EXPECT_EQ(c.coord->live_workers(), 2);
}

TEST(CoordinatorTest, MissedPingsResetOnRecovery) {
  dist::CoordinatorOptions opts;
  opts.num_executors = 3;
  opts.heartbeat_interval_ms = 0;
  opts.heartbeat_timeout_ms = 3;
  opts.max_attempts = 1;
  Cluster c = MakeCluster(2, opts);

  c.transport->SetPeerDown(1, true);
  c.coord->SweepOnce();
  c.coord->SweepOnce();
  c.transport->SetPeerDown(1, false);  // back before the timeout
  c.coord->SweepOnce();                // successful ping resets silence
  c.transport->SetPeerDown(1, true);
  c.coord->SweepOnce();
  c.coord->SweepOnce();
  EXPECT_EQ(c.coord->live_workers(), 2) << "silence should have reset";
  c.coord->SweepOnce();
  EXPECT_EQ(c.coord->live_workers(), 1);
}

TEST(CoordinatorTest, PushFetchDropRoundTrip) {
  dist::CoordinatorOptions opts;
  opts.num_executors = 4;
  opts.heartbeat_interval_ms = 0;
  Cluster c = MakeCluster(2, opts);

  const dist::BucketId id{c.coord->NextShuffleId(), 0, 1, 3};
  const std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
  ASSERT_TRUE(c.coord->PushBucket(nullptr, id, 3, bytes).ok());

  auto got = c.coord->FetchBucket(nullptr, id, 3);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), bytes);

  // Wire bytes were metered on the engine totals (no stage given).
  const MetricsSnapshot snap = c.totals->Snapshot();
  EXPECT_GT(snap.dist_bytes_sent, 0u);
  EXPECT_GT(snap.dist_bytes_received, 0u);

  c.coord->DropShuffle(id.shuffle_id);
  EXPECT_EQ(c.coord->FetchBucket(nullptr, id, 3).status().code(),
            StatusCode::kDataLoss);
}

TEST(CoordinatorTest, PushSurvivesWorkerDeathByReplacement) {
  dist::CoordinatorOptions opts;
  opts.num_executors = 2;
  opts.heartbeat_interval_ms = 0;
  opts.max_attempts = 3;
  Cluster c = MakeCluster(2, opts);

  // Executor 1 lives on worker 1; kill it before the push.
  c.transport->SetPeerDown(1, true);
  const dist::BucketId id{1, 0, 0, 1};
  ASSERT_TRUE(c.coord->PushBucket(nullptr, id, 1, {9, 9}).ok());
  // The retry re-placed executor 1 onto the survivor.
  EXPECT_EQ(c.coord->live_workers(), 1);
  EXPECT_EQ(c.coord->WorkerOf(1).value(), 0);
  auto got = c.coord->FetchBucket(nullptr, id, 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), (std::vector<uint8_t>{9, 9}));
}

// ---------------------------------------------------------------------------
// Engine-level distributed shuffle
// ---------------------------------------------------------------------------

ValueVec MixedPairs(int n) {
  ValueVec rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(VPair(VInt(i % 13), VTuple({VInt(i), VDouble(i * 0.5)})));
  }
  return rows;
}

ClusterConfig DistConfig(const std::string& workers,
                         const std::string& transport) {
  ClusterConfig cfg;
  cfg.num_executors = 3;
  cfg.cores_per_executor = 2;
  cfg.default_parallelism = 6;
  cfg.workers = workers;
  cfg.transport = transport;
  cfg.heartbeat_interval_ms = 0;  // deterministic: no background pings
  return cfg;
}

struct DistRun {
  ValueVec rows;
  MetricsSnapshot counters;
};

template <typename QueryFn>
DistRun RunQuery(const ClusterConfig& cfg, QueryFn&& query,
                 uint64_t fail_worker_after = 0) {
  Engine eng(cfg);
  if (fail_worker_after > 0) {
    EXPECT_TRUE(eng.distributed());
    if (eng.distributed()) eng.local_worker(1)->FailAfter(fail_worker_after);
  }
  Result<Dataset> out = query(&eng);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  DistRun r;
  r.rows = eng.Collect(out.value()).value();
  r.counters = eng.metrics().Snapshot();
  return r;
}

void ExpectIdenticalRows(const ValueVec& a, const ValueVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i]))
        << "row " << i << ": " << a[i].ToString() << " vs "
        << b[i].ToString();
  }
}

Result<Dataset> GroupQuery(Engine* eng) {
  Dataset ds = eng->Parallelize(MixedPairs(400), 6);
  return eng->GroupByKey(ds);
}

TEST(DistShuffleTest, LoopbackMatchesSingleProcess) {
  DistRun solo = RunQuery(DistConfig("", ""), GroupQuery);
  DistRun dist = RunQuery(DistConfig("3", "loopback"), GroupQuery);
  ExpectIdenticalRows(solo.rows, dist.rows);

  // Single-process mode moved nothing over a transport...
  EXPECT_EQ(solo.counters.dist_bytes_sent, 0u);
  // ...while distributed mode pushed every cross-executor bucket.
  EXPECT_GT(dist.counters.dist_bytes_sent, 0u);
  EXPECT_GT(dist.counters.dist_bytes_received, 0u);
  EXPECT_EQ(dist.counters.workers_lost, 0u);
  EXPECT_EQ(dist.counters.partitions_reexecuted, 0u);
  // Shuffle-byte accounting is transport-independent.
  EXPECT_EQ(solo.counters.shuffle_bytes + solo.counters.local_shuffle_bytes,
            dist.counters.shuffle_bytes + dist.counters.local_shuffle_bytes);
}

TEST(DistShuffleTest, TcpMatchesLoopback) {
  DistRun lo = RunQuery(DistConfig("3", "loopback"), GroupQuery);
  DistRun tcp = RunQuery(DistConfig("3", "tcp"), GroupQuery);
  ExpectIdenticalRows(lo.rows, tcp.rows);
  // Same buckets, same codec, same framing: identical wire accounting.
  EXPECT_EQ(lo.counters.dist_bytes_sent, tcp.counters.dist_bytes_sent);
  EXPECT_EQ(lo.counters.dist_bytes_received,
            tcp.counters.dist_bytes_received);
}

TEST(DistShuffleTest, WorkerDeathRecoversViaLineage) {
  DistRun solo = RunQuery(DistConfig("", ""), GroupQuery);
  // Worker 1 dies after serving a handful of requests -- mid-shuffle.
  DistRun dist =
      RunQuery(DistConfig("3", "loopback"), GroupQuery,
               /*fail_worker_after=*/3);
  ExpectIdenticalRows(solo.rows, dist.rows);
  EXPECT_GE(dist.counters.workers_lost, 1u);
  EXPECT_GT(dist.counters.partitions_reexecuted, 0u);
}

TEST(DistShuffleTest, JoinOverTcpMatchesSingleProcess) {
  // A join is the heaviest shuffle shape (two parents feed one stage);
  // run it through real sockets and check against the plain engine.
  auto query = [](Engine* eng) -> Result<Dataset> {
    Dataset a = eng->Parallelize(MixedPairs(200), 6);
    Dataset b = eng->Parallelize(MixedPairs(150), 6);
    return eng->Join(a, b);
  };
  DistRun solo = RunQuery(DistConfig("", ""), query);
  DistRun tcp = RunQuery(DistConfig("3", "tcp"), query);
  ExpectIdenticalRows(solo.rows, tcp.rows);
}

TEST(DistShuffleTest, DefaultConfigBuildsNoCoordinator) {
  Engine eng(ClusterConfig{});
  EXPECT_FALSE(eng.distributed());
  EXPECT_EQ(eng.coordinator(), nullptr);
  EXPECT_EQ(eng.local_worker(0), nullptr);
}

}  // namespace
}  // namespace sac::runtime
