// Tests for the Section 8 extension: CSR tiles and the sparse-tiled
// distributed storage with its black-box library kernels.
#include "src/storage/sparse_tiled.h"

#include <gtest/gtest.h>

#include "src/api/algorithms.h"
#include "src/api/sac.h"
#include "src/la/kernels.h"

namespace sac {
namespace {

using la::SparseTile;
using la::Tile;

Tile SparseRandom(int64_t r, int64_t c, uint64_t seed, double density) {
  Rng rng(seed);
  Tile t(r, c);
  for (int64_t i = 0; i < t.size(); ++i) {
    if (rng.NextDouble() < density) t.data()[i] = rng.Uniform(-2.0, 2.0);
  }
  return t;
}

TEST(SparseTileTest, DenseRoundTrip) {
  Tile d = SparseRandom(13, 9, 1, 0.2);
  SparseTile s = SparseTile::FromDense(d);
  EXPECT_TRUE(s.ToDense() == d);
  EXPECT_LT(s.nnz(), d.size());
  EXPECT_EQ(s.row_ptr().size(), 14u);
}

TEST(SparseTileTest, EmptyAndFullTiles) {
  Tile zero(4, 4);
  SparseTile s0 = SparseTile::FromDense(zero);
  EXPECT_EQ(s0.nnz(), 0);
  EXPECT_TRUE(s0.ToDense() == zero);

  Tile full(3, 3);
  for (int64_t i = 0; i < full.size(); ++i) full.data()[i] = 1.0 + i;
  SparseTile sf = SparseTile::FromDense(full);
  EXPECT_EQ(sf.nnz(), 9);
  EXPECT_TRUE(sf.ToDense() == full);
}

TEST(SparseTileTest, PayloadSmallerThanDenseWhenSparse) {
  Tile d = SparseRandom(64, 64, 2, 0.05);
  SparseTile s = SparseTile::FromDense(d);
  EXPECT_LT(s.PayloadBytes(), static_cast<size_t>(d.size()) * 8 / 2);
}

TEST(SparseTileTest, SpMVMatchesDense) {
  Tile a = SparseRandom(17, 23, 3, 0.15);
  Rng rng(4);
  Tile x(1, 23);
  x.FillRandom(&rng, -1.0, 1.0);
  SparseTile s = SparseTile::FromDense(a);
  Tile y(1, 17);
  la::SpMV(s, x, &y);
  for (int64_t i = 0; i < 17; ++i) {
    double ref = 0;
    for (int64_t k = 0; k < 23; ++k) ref += a.At(i, k) * x.At(0, k);
    EXPECT_NEAR(y.At(0, i), ref, 1e-12);
  }
}

TEST(SparseTileTest, SpGemmMatchesDenseGemm) {
  Tile a = SparseRandom(12, 15, 5, 0.2);
  Rng rng(6);
  Tile b(15, 10);
  b.FillRandom(&rng, -1.0, 1.0);
  Tile ref(12, 10), got(12, 10);
  la::GemmAccum(a, b, &ref);
  la::SpGemmAccum(SparseTile::FromDense(a), b, &got);
  for (int64_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got.data()[i], ref.data()[i], 1e-12);
  }
}

TEST(SparseTileTest, SpAxpby) {
  Tile a = SparseRandom(6, 7, 7, 0.3);
  Rng rng(8);
  Tile b(6, 7);
  b.FillRandom(&rng, -1.0, 1.0);
  Tile out;
  la::SpAxpby(2.0, SparseTile::FromDense(a), -1.0, b, &out);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], 2.0 * a.data()[i] - b.data()[i], 1e-12);
  }
}

TEST(SparseValueTest, SerializeRoundTrip) {
  using runtime::Value;
  Value v = Value::SparseTileVal(
      SparseTile::FromDense(SparseRandom(9, 9, 9, 0.25)));
  ByteWriter w;
  v.Serialize(&w);
  EXPECT_EQ(w.size(), v.SerializedSize());
  ByteReader r(w.buffer());
  auto back = Value::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().Equals(v));
  EXPECT_EQ(back.value().Hash(), v.Hash());
}

// ---- distributed sparse storage -------------------------------------------

class SparseTiledTest : public ::testing::Test {
 protected:
  SparseTiledTest() : ctx_(runtime::ClusterConfig{2, 2, 4}) {}
  Sac ctx_;
};

TEST_F(SparseTiledTest, CompressDecompressRoundTrip) {
  auto dense = ctx_.RandomSparseMatrix(40, 30, 8, 11, 0.1, 5).value();
  auto sparse = storage::Compress(&ctx_.engine(), dense).value();
  auto back = storage::Decompress(&ctx_.engine(), sparse).value();
  EXPECT_EQ(storage::MaxAbsDiff(&ctx_.engine(), dense, back).value(), 0.0);
}

TEST_F(SparseTiledTest, NnzAndCompressionRatio) {
  auto dense = ctx_.RandomSparseMatrix(64, 64, 16, 12, 0.05, 5).value();
  auto sparse = storage::Compress(&ctx_.engine(), dense).value();
  const int64_t nnz = storage::Nnz(&ctx_.engine(), sparse).value();
  EXPECT_GT(nnz, 0);
  EXPECT_LT(nnz, 64 * 64 / 5);  // ~5% density
  const int64_t bytes = storage::PayloadBytes(&ctx_.engine(), sparse).value();
  EXPECT_LT(bytes, 64 * 64 * 8 / 2);  // much smaller than dense
}

TEST_F(SparseTiledTest, SpMatVecMatchesDenseMatVec) {
  auto dense = ctx_.RandomSparseMatrix(40, 24, 8, 13, 0.15, 5).value();
  auto sparse = storage::Compress(&ctx_.engine(), dense).value();
  auto x = ctx_.RandomVector(24, 8, 14).value();
  auto sy = ctx_.ToLocal(
                   storage::SpMatVec(&ctx_.engine(), sparse, x).value())
                .value();
  auto dy = ctx_.ToLocal(algo::MatVec(&ctx_, dense, x).value()).value();
  ASSERT_EQ(sy.size(), dy.size());
  for (size_t i = 0; i < sy.size(); ++i) {
    ASSERT_NEAR(sy[i], dy[i], 1e-9);
  }
}

TEST_F(SparseTiledTest, SpMultiplyMatchesDenseMultiply) {
  auto a_dense = ctx_.RandomSparseMatrix(24, 20, 8, 15, 0.2, 5).value();
  auto a_sparse = storage::Compress(&ctx_.engine(), a_dense).value();
  auto b = ctx_.RandomMatrix(20, 16, 8, 16).value();
  auto sp = storage::SpMultiply(&ctx_.engine(), a_sparse, b).value();
  auto de = algo::Multiply(&ctx_, a_dense, b).value();
  EXPECT_LT(storage::MaxAbsDiff(&ctx_.engine(), sp, de).value(), 1e-8);
}

TEST_F(SparseTiledTest, SparseShufflesFewerBytesThanDense) {
  // The Section 8 rationale: sparse tiles shrink the shuffle.
  auto dense = ctx_.RandomSparseMatrix(64, 64, 16, 17, 0.02, 5).value();
  auto sparse = storage::Compress(&ctx_.engine(), dense).value();
  auto x = ctx_.RandomVector(64, 16, 18).value();

  ctx_.metrics().Reset();
  ASSERT_TRUE(storage::SpMatVec(&ctx_.engine(), sparse, x).ok());
  const uint64_t sparse_bytes = ctx_.metrics().shuffle_bytes();

  ctx_.metrics().Reset();
  ASSERT_TRUE(algo::MatVec(&ctx_, dense, x).ok());
  const uint64_t dense_bytes = ctx_.metrics().shuffle_bytes();

  EXPECT_LT(sparse_bytes * 2, dense_bytes);
}

TEST_F(SparseTiledTest, DimensionMismatchErrors) {
  auto dense = ctx_.RandomSparseMatrix(16, 16, 8, 19, 0.1, 5).value();
  auto sparse = storage::Compress(&ctx_.engine(), dense).value();
  auto bad_x = ctx_.RandomVector(24, 8, 20).value();
  EXPECT_FALSE(storage::SpMatVec(&ctx_.engine(), sparse, bad_x).ok());
  auto bad_b = ctx_.RandomMatrix(24, 8, 8, 21).value();
  EXPECT_FALSE(storage::SpMultiply(&ctx_.engine(), sparse, bad_b).ok());
}

}  // namespace
}  // namespace sac
