#include "src/common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sac {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  int v = 0;
  pool.ParallelFor(1, [&](size_t i) { v = static_cast<int>(i) + 7; });
  EXPECT_EQ(v, 7);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlockWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      pool.Submit([&] { count.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ParallelForSumsCorrectly) {
  ThreadPool pool(4);
  std::vector<int64_t> parts(257, 0);
  pool.ParallelFor(parts.size(),
                   [&](size_t i) { parts[i] = static_cast<int64_t>(i); });
  const int64_t total = std::accumulate(parts.begin(), parts.end(), int64_t{0});
  EXPECT_EQ(total, 256 * 257 / 2);
}

}  // namespace
}  // namespace sac
