#include "src/common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sac {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  int v = 0;
  pool.ParallelFor(1, [&](size_t i) { v = static_cast<int>(i) + 7; });
  EXPECT_EQ(v, 7);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlockWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      pool.Submit([&] { count.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ParallelForExplicitChunkCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                   /*chunk=*/7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DynamicClaimingLetsIdleWorkersDrainSkewedWork) {
  // Element 0 blocks until elements 1..3 have run. Static striping would
  // pin some of 1..3 behind the blocked worker and deadlock; dynamic
  // claiming lets the free worker drain them, so element 0's wait is
  // satisfied. The generous timeout turns a regression into a test
  // failure instead of a hang.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  bool timed_out = false;
  pool.ParallelFor(4, [&](size_t i) {
    std::unique_lock<std::mutex> lock(mu);
    if (i == 0) {
      timed_out = !cv.wait_for(lock, std::chrono::seconds(60),
                               [&] { return done == 3; });
    } else {
      ++done;
      cv.notify_all();
    }
  });
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(done, 3);
}

TEST(ThreadPoolTest, ParallelForSumsCorrectly) {
  ThreadPool pool(4);
  std::vector<int64_t> parts(257, 0);
  pool.ParallelFor(parts.size(),
                   [&](size_t i) { parts[i] = static_cast<int64_t>(i); });
  const int64_t total = std::accumulate(parts.begin(), parts.end(), int64_t{0});
  EXPECT_EQ(total, 256 * 257 / 2);
}

}  // namespace
}  // namespace sac
