#!/usr/bin/env bash
# Regression gate over the committed bench reports: diffs every
# BENCH_<name>.json at the repo root against its
# BENCH_<name>.baseline.json with tools/sac_prof (noise-aware
# thresholds: a metric regresses only when it worsens by BOTH the
# relative and the absolute bar). Exits non-zero when any wall-clock or
# shuffle-volume regression is found, so check.sh fails before a perf
# regression lands unnoticed.
#
# Usage: scripts/bench_diff.sh [--prof <path-to-sac_prof>]
set -euo pipefail
cd "$(dirname "$0")/.."

prof="build/tools/sac_prof"
if [[ "${1:-}" == "--prof" ]]; then
  prof="${2:?--prof needs a path}"
fi
if [[ ! -x "$prof" ]]; then
  echo "bench_diff: $prof not built (cmake --build build --target sac_prof)" >&2
  exit 2
fi

status=0
found=0
for base in BENCH_*.baseline.json; do
  [[ -e "$base" ]] || continue
  cur="${base%.baseline.json}.json"
  if [[ ! -e "$cur" ]]; then
    echo "bench_diff: skipping $base (no $cur)" >&2
    continue
  fi
  found=1
  echo "==> $cur vs $base"
  "$prof" diff "$base" "$cur" || status=1
done

if [[ "$found" == 0 ]]; then
  echo "bench_diff: no BENCH_*.baseline.json files found" >&2
  exit 2
fi
exit "$status"
