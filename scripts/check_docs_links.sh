#!/usr/bin/env bash
# Fails if any markdown file in the repo contains a relative link to a
# file that does not exist. Checks inline links [text](target) in every
# tracked *.md (skipping http(s)/mailto targets and pure #anchors;
# in-file anchor fragments of existing targets are not resolved).
#
# Usage: scripts/check_docs_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Pull out every](target) link target, one per line.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"         # strip any anchor fragment
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "$md: dead relative link -> $target" >&2
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$md" 2>/dev/null \
             | sed 's/^](//; s/)$//' || true)
done < <(git ls-files '*.md')

if [[ "$fail" -ne 0 ]]; then
  echo "docs link check: FAILED" >&2
  exit 1
fi
echo "docs link check: ok"
