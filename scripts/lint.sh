#!/usr/bin/env bash
# Static lint pass: clang-tidy (checks from .clang-tidy) over src/ and
# tools/, using a CMake compile database. Skips cleanly -- exit 0 with a
# notice -- when clang-tidy is not installed, so check.sh works on minimal
# containers.
#
# Usage: scripts/lint.sh [extra clang-tidy args...]
set -euo pipefail
cd "$(dirname "$0")/.."

tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    tidy="$cand"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "lint.sh: clang-tidy not found; skipping (install clang-tidy to enable)"
  exit 0
fi

jobs="$(nproc 2>/dev/null || echo 4)"
echo "==> lint: $tidy over src/ and tools/"
cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

files="$(find src tools -name '*.cc' | sort)"
# xargs -P parallelizes across translation units; clang-tidy itself is
# single-threaded per file.
echo "$files" | xargs -P "$jobs" -n 4 "$tidy" -p build-lint --quiet "$@"
echo "==> lint clean"
