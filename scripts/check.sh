#!/usr/bin/env bash
# CI-style check: the tier-1 verify line, then a ThreadSanitizer build of
# the concurrency-sensitive tests (engine, trace, thread pool), since the
# trace/metrics buffers are written from pool threads.
#
# Usage: scripts/check.sh [--tsan-only|--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "$mode" != "--tsan-only" ]]; then
  echo "==> tier-1: configure + build + ctest"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$mode" != "--tier1-only" ]]; then
  echo "==> tsan: engine / trace / observability / thread-pool tests"
  cmake -B build-tsan -S . -DSAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" --target sac_tests
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/sac_tests \
    --gtest_filter='Engine*:*Tracer*:*Histogram*:Observability*:ThreadPool*:*MetricsSnapshot*'
fi

echo "==> all checks passed"
