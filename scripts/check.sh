#!/usr/bin/env bash
# CI-style check:
#   1. tier-1: build (warnings-as-errors) + full ctest
#   2. sac_lint gate: the analyzer accepts every examples/lint/*_ok.sac
#      and rejects every *_err.sac with located diagnostics
#   3. clang-tidy via scripts/lint.sh (skips when not installed)
#   4. perf-smoke: bench_abl_shuffle_path --smoke at tiny scale (shuffle
#      fast path must not be slower than the serialize path by >10%, and
#      the local+remote byte accounting must match it exactly)
#   5. chaos: bench_abl_recovery --smoke (fig4c under a canned seeded
#      fault plan must produce byte-identical factors to the fault-free
#      run, with retries/backoff/checkpoints metered and overhead bounded)
#   6. out-of-core: bench_abl_memory --smoke (fig4b multiply under a
#      memory budget a quarter of its working set must evict, reload,
#      and still produce a byte-identical product with bounded slowdown)
#   7. docs: scripts/check_docs_links.sh (no *.md relative link may point
#      at a missing file)
#   8. asan: AddressSanitizer+UBSan build, full test suite
#   9. tsan: ThreadSanitizer build of the concurrency-sensitive tests
#      (engine, trace, thread pool, shuffle pools, sharded metrics, the
#      block store / memory budget, and the recovery/retry path), since
#      the trace/metrics buffers, fault counters, and budget accounting
#      are written from pool threads
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "$mode" == "all" || "$mode" == "--tier1-only" ]]; then
  echo "==> tier-1: configure + build + ctest"
  cmake -B build -S . -DSAC_WERROR=ON
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")

  echo "==> sac_lint: examples/lint gate"
  for f in examples/lint/*_ok.sac; do
    ./build/tools/sac_lint --Werror "$f" || {
      echo "sac_lint rejected clean file $f"; exit 1;
    }
  done
  for f in examples/lint/*_err.sac; do
    if ./build/tools/sac_lint "$f"; then
      echo "sac_lint accepted erroneous file $f"; exit 1
    fi
  done

  scripts/lint.sh

  echo "==> perf-smoke: shuffle fast path vs serialize path"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=3 \
    ./build/bench/bench_abl_shuffle_path --smoke \
    --out build/BENCH_abl_shuffle_path.smoke.json

  echo "==> chaos: fig4c under a seeded fault plan (recovery gate)"
  SAC_BENCH_REPS=1 \
    ./build/bench/bench_abl_recovery --smoke \
    --out build/BENCH_abl_recovery.smoke.json

  echo "==> out-of-core: fig4b multiply under a 25% memory budget"
  # SAC_MEM_BUDGET must be unset: the bench sizes its own budget from the
  # unlimited run's peak, and the env var would override both contexts.
  SAC_BENCH_REPS=1 env -u SAC_MEM_BUDGET \
    ./build/bench/bench_abl_memory --smoke \
    --out build/BENCH_abl_memory.smoke.json

  echo "==> docs: markdown relative-link check"
  scripts/check_docs_links.sh
fi

if [[ "$mode" == "all" || "$mode" == "--asan-only" ]]; then
  echo "==> asan+ubsan: full test suite"
  cmake -B build-asan -S . -DSAC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$jobs" --target sac_tests
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/sac_tests
fi

if [[ "$mode" == "all" || "$mode" == "--tsan-only" ]]; then
  echo "==> tsan: engine / trace / observability / thread-pool tests"
  cmake -B build-tsan -S . -DSAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" --target sac_tests
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/sac_tests \
    --gtest_filter='Engine*:*Tracer*:*Histogram*:Observability*:ThreadPool*:*MetricsSnapshot*:*Pool*:*ShufflePath*:*ShardedMetrics*:*Recovery*:*FaultPlan*:*BlockStore*:*Memory*'
fi

echo "==> all checks passed"
