#!/usr/bin/env bash
# CI-style check:
#   1. tier-1: build (warnings-as-errors) + full ctest
#   2. sac_lint gate: the analyzer accepts every examples/lint/*_ok.sac
#      and rejects every *_err.sac with located diagnostics; the SARIF
#      renderer over all examples must emit parseable JSON
#      (--format=sarif), and --json analysis reports must round-trip
#   3. clang-tidy via scripts/lint.sh (skips when not installed)
#   4. perf-smoke: bench_abl_shuffle_path --smoke at tiny scale (shuffle
#      fast path must not be slower than the serialize path by >10%, and
#      the local+remote byte accounting must match it exactly)
#   5. chaos: bench_abl_recovery --smoke (fig4c under a canned seeded
#      fault plan must produce byte-identical factors to the fault-free
#      run, with retries/backoff/checkpoints metered and overhead bounded)
#   6. out-of-core: bench_abl_memory --smoke (fig4b multiply under a
#      memory budget a quarter of its working set must evict, reload,
#      and still produce a byte-identical product with bounded slowdown)
#   7. profiler: fig4c at tiny scale with --profile; sac_prof check must
#      find a non-empty critical path covering >= 80% of wall-clock, and
#      sac_prof diff of the profile against itself must report zero
#      regressions
#   8. sampler: bench_abl_sampler --smoke (time-series sampler at the
#      1 ms interval must cost <= 3% vs sampler-off and actually sample)
#   8b. strategy: bench_abl_strategy at tiny scale (the multiply plan
#      the cost model picks must be within 5% of the best forced plan),
#      then sac_prof predcheck holds the compile-time shuffle-byte
#      predictions within 2x of the measured counters on fig4a/b/c
#      (docs/COST_MODEL.md)
#   8c. backends: bench_abl_backend at tiny scale (packed GEMM >= 1.3x
#      generic at n=512, all three kernel backends byte-identical on
#      fig4-shaped queries, fusion strictly reduces tile allocations;
#      docs/KERNELS.md)
#   8d. service: bench_abl_service --smoke (4 concurrent sessions must be
#      >= 2x faster than serialized admission with byte-identical
#      products, and the plan cache must show 1 miss + K-1 hits with
#      measurable compile savings; docs/SERVICE.md)
#   8e. distributed: bench_abl_transport --smoke (fig4b multiply over 3
#      in-process workers: loopback and TCP products byte-identical to
#      single-process, identical wire-byte accounting, bounded TCP
#      overhead), then the external-cluster chaos gate: 3 sac_worker
#      processes on localhost, one kill -9'd mid-shuffle, the product
#      must still be byte-identical with workers_lost >= 1 and
#      partitions_reexecuted > 0 (docs/DISTRIBUTED.md); workers are
#      torn down via trap even when the gate fails
#   9. bench regression gate: scripts/bench_diff.sh (committed
#      BENCH_*.json vs BENCH_*.baseline.json via sac_prof diff)
#  10. docs: scripts/check_docs_links.sh (no *.md relative link may point
#      at a missing file) + scripts/check_metrics_glossary.sh (every
#      MetricsSnapshot counter documented in docs/OPERATIONS.md)
#  11. asan: AddressSanitizer+UBSan build, full test suite, then the
#      4-session concurrent service smoke under ASan
#  12. tsan: ThreadSanitizer build of the concurrency-sensitive tests
#      (engine, trace, thread pool, shuffle pools, sharded metrics, the
#      block store / memory budget, the recovery/retry path, the
#      sampler/profile machinery, the multi-tenant session/admission
#      layer, and the distributed transport/coordinator/worker stack --
#      heartbeat thread vs RPCs vs placement), since the trace/metrics
#      buffers, fault counters, budget
#      accounting, sampler counters, and per-session attribution sinks
#      are written from pool/background threads; plus the same 4-session
#      concurrent service smoke under tsan
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "$mode" == "all" || "$mode" == "--tier1-only" ]]; then
  echo "==> tier-1: configure + build + ctest"
  cmake -B build -S . -DSAC_WERROR=ON
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")

  echo "==> sac_lint: examples/lint gate"
  for f in examples/lint/*_ok.sac; do
    ./build/tools/sac_lint --Werror "$f" || {
      echo "sac_lint rejected clean file $f"; exit 1;
    }
  done
  for f in examples/lint/*_err.sac; do
    if ./build/tools/sac_lint "$f"; then
      echo "sac_lint accepted erroneous file $f"; exit 1
    fi
  done

  echo "==> sac_lint: SARIF + analysis.json renderers"
  # The example set includes *_err.sac files, so the lint exit code is 1
  # by design; the gate is that both renderers emit parseable JSON.
  ./build/tools/sac_lint --format=sarif examples/lint/*.sac \
    > build/lint.sarif || true
  ./build/tools/sac_lint --json=build/lint.analysis.json \
    examples/lint/*.sac >/dev/null || true
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool build/lint.sarif >/dev/null \
      || { echo "sac_lint --format=sarif emitted invalid JSON"; exit 1; }
    python3 -m json.tool build/lint.analysis.json >/dev/null \
      || { echo "sac_lint --json emitted invalid JSON"; exit 1; }
    python3 - <<'EOF'
import json
sarif = json.load(open("build/lint.sarif"))
assert sarif["version"] == "2.1.0", "sarif version"
assert sarif["runs"][0]["results"], "sarif has no results"
analysis = json.load(open("build/lint.analysis.json"))
assert analysis["analysis_version"] == 1, "analysis_version"
assert len(analysis["files"]) >= 5, "expected >=5 analyzed files"
EOF
  else
    [[ -s build/lint.sarif && -s build/lint.analysis.json ]] \
      || { echo "sac_lint SARIF/json output missing"; exit 1; }
  fi

  scripts/lint.sh

  echo "==> perf-smoke: shuffle fast path vs serialize path"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=3 \
    ./build/bench/bench_abl_shuffle_path --smoke \
    --out build/BENCH_abl_shuffle_path.smoke.json

  echo "==> chaos: fig4c under a seeded fault plan (recovery gate)"
  SAC_BENCH_REPS=1 \
    ./build/bench/bench_abl_recovery --smoke \
    --out build/BENCH_abl_recovery.smoke.json

  echo "==> out-of-core: fig4b multiply under a 25% memory budget"
  # SAC_MEM_BUDGET must be unset: the bench sizes its own budget from the
  # unlimited run's peak, and the env var would override both contexts.
  SAC_BENCH_REPS=1 env -u SAC_MEM_BUDGET \
    ./build/bench/bench_abl_memory --smoke \
    --out build/BENCH_abl_memory.smoke.json

  echo "==> profiler: fig4c profile + critical-path gate"
  # One rep so the profiled trace and the reported wall time describe
  # the same run (TimeQuery keeps the last rep's trace, reports the mean).
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=1 \
    ./build/bench/bench_fig4c_factorization \
    --out build/BENCH_fig4c.prof-smoke.json \
    --profile build/fig4c.profile.json
  ./build/tools/sac_prof build/fig4c.profile.json
  ./build/tools/sac_prof check build/fig4c.profile.json --min-coverage 80
  ./build/tools/sac_prof diff build/fig4c.profile.json build/fig4c.profile.json

  echo "==> sampler: overhead gate (<= 3% vs sampler-off)"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=2 \
    ./build/bench/bench_abl_sampler --smoke \
    --out build/BENCH_abl_sampler.smoke.json

  echo "==> strategy: auto vs forced multiply plans (cost-model gate)"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=3 \
    ./build/bench/bench_abl_strategy \
    --out build/BENCH_abl_strategy.smoke.json

  echo "==> backends: packed GEMM speedup + byte-identity + fusion gate"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=2 \
    ./build/bench/bench_abl_backend \
    --out build/BENCH_abl_backend.smoke.json

  echo "==> service: concurrent admission + plan cache gate"
  # SAC_MAX_CONCURRENT must be unset: the bench pins its own admission
  # limit per arm, and the env var would override both.
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=1 env -u SAC_MAX_CONCURRENT \
    ./build/bench/bench_abl_service --smoke \
    --out build/BENCH_abl_service.smoke.json

  echo "==> distributed: transport ablation (single vs loopback vs tcp)"
  # SAC_WORKERS/SAC_TRANSPORT must be unset: they would override the
  # single-process baseline arm (the bench refuses to run otherwise).
  SAC_BENCH_REPS=1 env -u SAC_WORKERS -u SAC_TRANSPORT \
    ./build/bench/bench_abl_transport --smoke \
    --out build/BENCH_abl_transport.smoke.json

  echo "==> distributed: 3-worker TCP cluster + kill -9 chaos gate"
  worker_pids=()
  cleanup_workers() {
    for p in "${worker_pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    worker_pids=()
  }
  # Tear the cluster down even when the gate (or any later stage) fails.
  trap cleanup_workers EXIT
  worker_addrs=""
  for i in 1 2 3; do
    rm -f "build/sac_worker.$i.log"
    # The per-put delay stretches the shuffle window so the bench's
    # kill -9 reliably lands mid-stream.
    SAC_WORKER_DELAY_US=2000 ./build/tools/sac_worker --port=0 \
      > "build/sac_worker.$i.log" 2>&1 &
    worker_pids+=($!)
  done
  for i in 1 2 3; do
    port=""
    for _ in $(seq 1 100); do
      port="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "build/sac_worker.$i.log")"
      [[ -n "$port" ]] && break
      sleep 0.1
    done
    [[ -n "$port" ]] || { echo "sac_worker $i never became ready"; exit 1; }
    worker_addrs+="${worker_addrs:+,}127.0.0.1:$port"
  done
  SAC_BENCH_REPS=1 SAC_WORKERS="$worker_addrs" \
    ./build/bench/bench_abl_transport --chaos --smoke \
    --out build/BENCH_abl_transport_chaos.smoke.json
  cleanup_workers

  echo "==> cost model: predicted vs measured shuffle bytes (2x gate)"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=1 \
    ./build/bench/bench_fig4a_addition \
    --out build/BENCH_fig4a.pred-smoke.json
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=1 \
    ./build/bench/bench_fig4b_multiply \
    --out build/BENCH_fig4b.pred-smoke.json
  ./build/tools/sac_prof predcheck build/BENCH_fig4a.pred-smoke.json
  ./build/tools/sac_prof predcheck build/BENCH_fig4b.pred-smoke.json
  # fig4c was already run at tiny scale by the profiler stage above.
  ./build/tools/sac_prof predcheck build/BENCH_fig4c.prof-smoke.json

  echo "==> bench regression gate: committed reports vs baselines"
  scripts/bench_diff.sh

  echo "==> docs: markdown relative-link check"
  scripts/check_docs_links.sh

  echo "==> docs: metrics glossary drift check"
  scripts/check_metrics_glossary.sh
fi

if [[ "$mode" == "all" || "$mode" == "--asan-only" ]]; then
  echo "==> asan+ubsan: full test suite"
  cmake -B build-asan -S . -DSAC_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$jobs" --target sac_tests bench_abl_service
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/sac_tests
  echo "==> asan: 4-session concurrent service smoke"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=1 env -u SAC_MAX_CONCURRENT \
    ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/bench/bench_abl_service --smoke \
    --out build-asan/BENCH_abl_service.smoke.json
fi

if [[ "$mode" == "all" || "$mode" == "--tsan-only" ]]; then
  echo "==> tsan: engine / trace / observability / thread-pool tests"
  cmake -B build-tsan -S . -DSAC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" --target sac_tests bench_abl_service
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/sac_tests \
    --gtest_filter='Engine*:*Tracer*:*Histogram*:Observability*:ThreadPool*:*MetricsSnapshot*:*Pool*:*ShufflePath*:*ShardedMetrics*:*Recovery*:*FaultPlan*:*BlockStore*:*Memory*:*Sampler*:*Profile*:*Session*:*FrameCodec*:*Transport*:*DistWorker*:*Coordinator*:*DistShuffle*'
  echo "==> tsan: 4-session concurrent service smoke"
  SAC_BENCH_SCALE=tiny SAC_BENCH_REPS=1 env -u SAC_MAX_CONCURRENT \
    TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/bench/bench_abl_service --smoke \
    --out build-tsan/BENCH_abl_service.smoke.json
fi

echo "==> all checks passed"
