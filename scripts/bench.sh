#!/usr/bin/env bash
# Runs the figure-reproduction benches and the shuffle-path + memory +
# sampler ablations, writing machine-readable reports at the repo root:
#   BENCH_fig4a.json  BENCH_fig4b.json  BENCH_fig4c.json
#   BENCH_abl_shuffle_path.json  BENCH_abl_memory.json
#   BENCH_abl_sampler.json  BENCH_abl_strategy.json
#   BENCH_abl_backend.json  BENCH_abl_service.json
#   BENCH_abl_transport.json
# Each fig4 bench also emits a profiler artifact
# (BENCH_<name>.profile.json, summarize with tools/sac_prof; see
# docs/PROFILING.md). Reports are committed alongside code changes so
# the perf trajectory is auditable across PRs; scripts/bench_diff.sh
# gates them against the BENCH_*.baseline.json files.
#
# Usage: scripts/bench.sh [scale] [reps]
#   scale: tiny | small | full   (default: small)
#   reps:  timed repetitions     (default: 3)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-small}"
reps="${2:-3}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target \
  bench_fig4a_addition bench_fig4b_multiply bench_fig4c_factorization \
  bench_abl_shuffle_path bench_abl_memory bench_abl_sampler \
  bench_abl_strategy bench_abl_backend bench_abl_service \
  bench_abl_transport sac_prof

export SAC_BENCH_SCALE="$scale" SAC_BENCH_REPS="$reps"

echo "==> fig4a (addition), scale=$scale reps=$reps"
./build/bench/bench_fig4a_addition --out BENCH_fig4a.json \
  --profile BENCH_fig4a.profile.json

echo "==> fig4b (multiplication)"
./build/bench/bench_fig4b_multiply --out BENCH_fig4b.json \
  --profile BENCH_fig4b.profile.json

echo "==> fig4c (factorization)"
./build/bench/bench_fig4c_factorization --out BENCH_fig4c.json \
  --profile BENCH_fig4c.profile.json

echo "==> ablation: shuffle fast path vs serialize path"
./build/bench/bench_abl_shuffle_path --out BENCH_abl_shuffle_path.json

echo "==> ablation: unlimited vs 25% memory budget (out-of-core)"
./build/bench/bench_abl_memory --out BENCH_abl_memory.json

echo "==> ablation: time-series sampler overhead"
./build/bench/bench_abl_sampler --out BENCH_abl_sampler.json

echo "==> ablation: cost-driven multiply strategy (self-gating)"
./build/bench/bench_abl_strategy --out BENCH_abl_strategy.json

echo "==> ablation: kernel backends + fusion (self-gating)"
./build/bench/bench_abl_backend --out BENCH_abl_backend.json

echo "==> ablation: multi-tenant service, admission + plan cache (self-gating)"
./build/bench/bench_abl_service --out BENCH_abl_service.json

echo "==> ablation: shuffle transport, loopback vs tcp (self-gating)"
# SAC_WORKERS/SAC_TRANSPORT would override the single-process arm; the
# bench refuses to run with either set.
env -u SAC_WORKERS -u SAC_TRANSPORT \
  ./build/bench/bench_abl_transport --out BENCH_abl_transport.json

echo "==> cost-model gate: predicted vs measured shuffle bytes (2x)"
./build/tools/sac_prof predcheck BENCH_fig4a.json
./build/tools/sac_prof predcheck BENCH_fig4b.json
./build/tools/sac_prof predcheck BENCH_fig4c.json

echo "==> regression gate: reports vs baselines"
scripts/bench_diff.sh

echo "==> reports written: BENCH_fig4a.json BENCH_fig4b.json BENCH_fig4c.json BENCH_abl_shuffle_path.json BENCH_abl_memory.json BENCH_abl_sampler.json BENCH_abl_strategy.json BENCH_abl_backend.json BENCH_abl_service.json BENCH_abl_transport.json (+ fig4 *.profile.json)"
