#!/usr/bin/env bash
# Runs the figure-reproduction benches and the shuffle-path + memory
# ablations, writing machine-readable reports at the repo root:
#   BENCH_fig4a.json  BENCH_fig4b.json  BENCH_fig4c.json
#   BENCH_abl_shuffle_path.json  BENCH_abl_memory.json
# These are committed alongside code changes so the perf trajectory is
# auditable across PRs (compare with the BENCH_*.baseline.json files).
#
# Usage: scripts/bench.sh [scale] [reps]
#   scale: tiny | small | full   (default: small)
#   reps:  timed repetitions     (default: 3)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-small}"
reps="${2:-3}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target \
  bench_fig4a_addition bench_fig4b_multiply bench_fig4c_factorization \
  bench_abl_shuffle_path bench_abl_memory

export SAC_BENCH_SCALE="$scale" SAC_BENCH_REPS="$reps"

echo "==> fig4a (addition), scale=$scale reps=$reps"
./build/bench/bench_fig4a_addition --out BENCH_fig4a.json

echo "==> fig4b (multiplication)"
./build/bench/bench_fig4b_multiply --out BENCH_fig4b.json

echo "==> fig4c (factorization)"
./build/bench/bench_fig4c_factorization --out BENCH_fig4c.json

echo "==> ablation: shuffle fast path vs serialize path"
./build/bench/bench_abl_shuffle_path --out BENCH_abl_shuffle_path.json

echo "==> ablation: unlimited vs 25% memory budget (out-of-core)"
./build/bench/bench_abl_memory --out BENCH_abl_memory.json

echo "==> reports written: BENCH_fig4a.json BENCH_fig4b.json BENCH_fig4c.json BENCH_abl_shuffle_path.json BENCH_abl_memory.json"
