#!/usr/bin/env bash
# Glossary drift check: every MetricsSnapshot counter (the
# SAC_METRICS_FOR_EACH_COUNTER list in src/common/metrics.h) must be
# documented in docs/OPERATIONS.md. Fails listing the missing names, so
# adding a counter without documenting it breaks check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

counters="$(sed -n 's/^ *X(\([a-z_0-9]*\)).*/\1/p' src/common/metrics.h)"
if [[ -z "$counters" ]]; then
  echo "metrics glossary: failed to extract counters from src/common/metrics.h" >&2
  exit 2
fi

missing=0
for name in $counters; do
  if ! grep -q "$name" docs/OPERATIONS.md; then
    echo "metrics glossary: counter '$name' (MetricsSnapshot) is not documented in docs/OPERATIONS.md" >&2
    missing=1
  fi
done

if [[ "$missing" == 0 ]]; then
  echo "metrics glossary: all MetricsSnapshot counters documented ($(echo "$counters" | wc -l) counters)"
fi
exit "$missing"
