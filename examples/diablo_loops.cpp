// The DIABLO pipeline (Section 1.1): imperative array loops are
// translated to array comprehensions, which SAC compiles to block-array
// plans. The classic triple loop below becomes the SUMMA group-by-join
// without the programmer ever writing a comprehension.
//
//   $ ./build/examples/diablo_loops [n]
#include <cstdio>
#include <cstdlib>

#include "src/api/sac.h"
#include "src/la/kernels.h"

int main(int argc, char** argv) {
  using namespace sac;  // NOLINT

  const int64_t n = argc > 1 ? atoll(argv[1]) : 256;
  const int64_t block = 64;

  Sac ctx;
  ctx.Bind("A", ctx.RandomMatrix(n, n, block, 1).value());
  ctx.Bind("B", ctx.RandomMatrix(n, n, block, 2).value());
  ctx.Bind("C", ctx.RandomMatrix(n, n, block, 3, 0.0, 0.0).value());
  ctx.Bind("V", ctx.RandomVector(n, block, 4, 0.0, 0.0).value());
  ctx.BindScalar("n", n);

  const char* program =
      "for i = 0, n-1 do for k = 0, n-1 do for j = 0, n-1 do\n"
      "  C[i,j] += A[i,k] * B[k,j];\n"
      "for i = 0, n-1 do for j = 0, n-1 do\n"
      "  V[i] += C[i,j];\n";

  std::printf("imperative program:\n%s\n", program);
  auto report = ctx.EvalLoop(program);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("translated and executed as:\n");
  for (const auto& line : report.value()) {
    std::printf("  %s\n", line.c_str());
  }

  // Spot-check against local arithmetic.
  auto c = ctx.ToLocal(ctx.bindings().at("C").tiled).value();
  auto la_ = ctx.ToLocal(ctx.bindings().at("A").tiled).value();
  auto lb = ctx.ToLocal(ctx.bindings().at("B").tiled).value();
  la::Tile ref(n, n);
  la::GemmAccum(la_, lb, &ref);
  double max_err = 0;
  for (int64_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, std::abs(c.data()[i] - ref.data()[i]));
  }
  std::printf("\nmax |C - A*B| = %.2e (local oracle)\n", max_err);
  auto v = ctx.ToLocal(ctx.bindings().at("V").vec).value();
  std::printf("V[0] = %.4f (row sum of C)\n", v[0]);
  return max_err < 1e-8 ? 0 : 1;
}
