// PageRank over a synthetic web graph, with the rank update written as an
// array comprehension: one matrix-vector product (Section 5.3 plan) plus
// one elementwise vector update (Section 5.1 plan) per iteration:
//
//   contrib = M^T r          (M row-normalized adjacency)
//   r'      = d * contrib + (1 - d)/n
//
//   $ ./build/examples/pagerank [pages] [iters]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "src/api/sac.h"
#include "src/common/rng.h"

int main(int argc, char** argv) {
  using namespace sac;  // NOLINT

  const int64_t n = argc > 1 ? atoll(argv[1]) : 512;
  const int iters = argc > 2 ? atoi(argv[2]) : 10;
  const int64_t block = 128;
  const double d = 0.85;

  runtime::ClusterConfig cluster;
  cluster.num_executors = 4;
  Sac ctx(cluster);

  // Synthetic link matrix: ~8 outlinks per page, column-stochastic after
  // normalization; M[i][j] = probability of moving from page i to page j.
  Rng rng(11);
  la::Tile m(n, n);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int64_t> outs;
    for (int k = 0; k < 8; ++k) {
      outs.push_back(static_cast<int64_t>(rng.NextBelow(n)));
    }
    for (int64_t j : outs) m.Add(i, j, 1.0);
    double deg = 0;
    for (int64_t j = 0; j < n; ++j) deg += m.At(i, j);
    for (int64_t j = 0; j < n; ++j) {
      if (m.At(i, j) > 0) m.Set(i, j, m.At(i, j) / deg);
    }
  }
  ctx.Bind("M", ctx.MatrixFromLocal(m, block).value());
  ctx.Bind("R", storage::VectorFromLocal(
                    &ctx.engine(),
                    std::vector<double>(n, 1.0 / static_cast<double>(n)),
                    block)
                    .value());
  ctx.BindScalar("n", n);
  ctx.BindScalar("d", d);
  ctx.BindScalar("base", (1.0 - d) / static_cast<double>(n));

  // contrib_j = sum_i M_ij * r_i : a transposed matrix-vector product.
  const std::string matvec =
      "tiled(n)[ (j, +/c) | ((i,j),m) <- M, (ii,r) <- R, ii == i,"
      " let c = m*r, group by j ]";
  const std::string update = "tiled(n)[ (i, d*v + base) | (i,v) <- C ]";

  auto plan = ctx.Compile(matvec);
  std::printf("rank update plan: %s\n",
              plan.ok() ? planner::StrategyName(plan.value().strategy)
                        : plan.status().ToString().c_str());

  for (int it = 0; it < iters; ++it) {
    auto contrib = ctx.EvalVector(matvec).value();
    ctx.Bind("C", contrib);
    auto next = ctx.EvalVector(update).value();
    ctx.Bind("R", next);
  }

  auto ranks = ctx.ToLocal(ctx.bindings().at("R").vec).value();
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](int64_t a, int64_t b) { return ranks[a] > ranks[b]; });
  std::printf("rank mass after %d iterations: %.6f (should stay ~1)\n",
              iters, total);
  std::printf("top pages:\n");
  for (int k = 0; k < 5; ++k) {
    std::printf("  page %5lld  rank %.6f\n",
                static_cast<long long>(order[k]), ranks[order[k]]);
  }
  return 0;
}
