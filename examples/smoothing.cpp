// Matrix smoothing (the Section 3 stencil): every cell becomes the average
// of its 3x3 neighbourhood, with boundary cells averaging only the cells
// that exist. A single declarative comprehension -- no index loops -- that
// also demonstrates the planner's totality: stencils fall outside the
// Section 5 tile rules, so the planner runs them through its fallback and
// still returns the right answer.
//
//   $ ./build/examples/smoothing [size]
#include <cstdio>
#include <cstdlib>

#include "src/api/sac.h"

int main(int argc, char** argv) {
  using namespace sac;  // NOLINT

  const int64_t n = argc > 1 ? atoll(argv[1]) : 96;
  const int64_t block = 32;

  Sac ctx;
  // A sharp impulse in a flat field: smoothing must spread it.
  la::Tile m(n, n);
  m.Set(n / 2, n / 2, 9.0);
  ctx.Bind("M", ctx.MatrixFromLocal(m, block).value());
  ctx.BindScalar("n", n);

  const std::string smooth =
      "tiled(n,n)[ ((ii,jj), (+/a)/a.length) | ((i,j),a) <- M,"
      " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
      " ii >= 0, ii < n, jj >= 0, jj < n, group by (ii,jj) ]";

  auto plan = ctx.Compile(smooth);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("smoothing plan: %s -- %s\n",
              planner::StrategyName(plan.value().strategy),
              plan.value().explanation.c_str());

  auto out = ctx.EvalTiled(smooth).value();
  auto local = ctx.ToLocal(out).value();
  std::printf("impulse at (%lld,%lld): before 9.0, after %.4f (9/9 = 1)\n",
              static_cast<long long>(n / 2), static_cast<long long>(n / 2),
              local.At(n / 2, n / 2));
  std::printf("neighbour (%lld,%lld): %.4f\n",
              static_cast<long long>(n / 2 + 1),
              static_cast<long long>(n / 2), local.At(n / 2 + 1, n / 2));
  std::printf("corner (0,0): %.4f (untouched, stays 0)\n", local.At(0, 0));

  // Conservation: a 3x3 averaging stencil preserves total mass away from
  // boundaries; report the totals.
  ctx.Bind("S", out);
  const double before = ctx.EvalScalar("+/[ v | ((i,j),v) <- M ]").value();
  const double after = ctx.EvalScalar("+/[ v | ((i,j),v) <- S ]").value();
  std::printf("total mass: before %.4f, after %.4f\n", before, after);
  return 0;
}
