// Recommender-system matrix factorization (the paper's third experiment):
// factor a sparse rating matrix R (users x items, integer ratings 0..5,
// ~10% filled) into low-rank P Q^T by gradient descent, every step written
// as array comprehensions and compiled through the Section 5 rules.
//
//   $ ./build/examples/recommender [users] [items] [rank] [iters]
//
// Prints the reconstruction error after each iteration -- it must
// decrease -- and the plan strategies used.
#include <cstdio>
#include <cstdlib>

#include "src/api/algorithms.h"
#include "src/api/sac.h"

int main(int argc, char** argv) {
  using namespace sac;  // NOLINT

  const int64_t users = argc > 1 ? atoll(argv[1]) : 256;
  const int64_t items = argc > 2 ? atoll(argv[2]) : 192;
  const int64_t rank = argc > 3 ? atoll(argv[3]) : 32;
  const int iters = argc > 4 ? atoi(argv[4]) : 5;
  const int64_t block = 64;
  const double gamma = 0.002, lambda = 0.02;

  runtime::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.cores_per_executor = 2;
  Sac ctx(cluster);

  std::printf("factorizing a %lldx%lld rating matrix into rank-%lld factors"
              " (gamma=%.3f lambda=%.2f)\n",
              static_cast<long long>(users), static_cast<long long>(items),
              static_cast<long long>(rank), gamma, lambda);

  auto r = ctx.RandomSparseMatrix(users, items, block, 7, 0.1, 5).value();
  algo::Factorization st{
      ctx.RandomMatrix(users, rank, block, 8, 0.0, 1.0).value(),
      ctx.RandomMatrix(items, rank, block, 9, 0.0, 1.0).value()};

  auto error = [&]() -> double {
    // ||R - P Q^T||_F^2 via comprehensions.
    auto pqt = algo::MultiplyBt(&ctx, st.p, st.q).value();
    auto e = algo::Sub(&ctx, r, pqt).value();
    return algo::FrobeniusSquared(&ctx, e).value();
  };

  std::printf("iter  0: error %.1f\n", error());
  for (int it = 1; it <= iters; ++it) {
    Stopwatch sw;
    auto next = algo::FactorizationStep(&ctx, r, st, gamma, lambda);
    if (!next.ok()) {
      std::fprintf(stderr, "step failed: %s\n",
                   next.status().ToString().c_str());
      return 1;
    }
    st = std::move(next).value();
    std::printf("iter %2d: error %.1f  (%.0f ms)\n", it, error(),
                sw.ElapsedMillis());
  }

  // Predict a rating: row u of P times row i of Q.
  auto lp = ctx.ToLocal(st.p).value();
  auto lq = ctx.ToLocal(st.q).value();
  auto lr = ctx.ToLocal(r).value();
  const int64_t u = 3, i = 5;
  double pred = 0;
  for (int64_t k = 0; k < rank; ++k) pred += lp.At(u, k) * lq.At(i, k);
  std::printf("user %lld / item %lld: actual %.0f, predicted %.2f\n",
              static_cast<long long>(u), static_cast<long long>(i),
              lr.At(u, i), pred);
  return 0;
}
