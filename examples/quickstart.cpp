// Quickstart: the paper's running examples, end to end.
//
//   $ ./build/examples/quickstart
//
// Builds two small distributed tiled matrices, then compiles and runs a
// few array comprehensions, printing the translation strategy the planner
// picked for each (the Section 5 rule) next to the numeric result.
#include <cstdio>

#include "src/api/sac.h"

int main() {
  using namespace sac;  // NOLINT

  // A simulated 4-executor cluster.
  runtime::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.cores_per_executor = 2;
  Sac ctx(cluster);

  const int64_t n = 512, block = 128;
  ctx.Bind("A", ctx.RandomMatrix(n, n, block, /*seed=*/1).value());
  ctx.Bind("B", ctx.RandomMatrix(n, n, block, /*seed=*/2).value());
  ctx.BindScalar("n", n);

  auto show = [&](const char* what, const std::string& query) {
    auto plan = ctx.Compile(query);
    if (!plan.ok()) {
      std::printf("%-18s PLAN ERROR: %s\n", what,
                  plan.status().ToString().c_str());
      return;
    }
    std::printf("%-18s strategy=%s\n", what,
                planner::StrategyName(plan.value().strategy));
    std::printf("%-18s %s\n", "", plan.value().explanation.c_str());
  };

  std::printf("== plans ==\n");
  const std::string add =
      "tiled(n,n)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
      " ii == i, jj == j ]";
  const std::string multiply =
      "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
      " kk == k, let v = a*b, group by (i,j) ]";
  const std::string row_sums =
      "tiled(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]";
  const std::string transpose = "tiled(n,n)[ ((j,i),a) | ((i,j),a) <- A ]";
  show("addition", add);
  show("multiplication", multiply);
  show("row sums", row_sums);
  show("transpose", transpose);

  std::printf("\n== results ==\n");
  // Matrix addition: check one element against the inputs.
  auto c = ctx.EvalTiled(add).value();
  auto lc = ctx.ToLocal(c).value();
  auto la_ = ctx.ToLocal(ctx.bindings().at("A").tiled).value();
  auto lb = ctx.ToLocal(ctx.bindings().at("B").tiled).value();
  std::printf("addition:      C[7,9] = %.4f (A+B = %.4f)\n", lc.At(7, 9),
              la_.At(7, 9) + lb.At(7, 9));

  // The paper's V_i = sum_j M_ij (Figure 1).
  auto v = ctx.EvalVector(row_sums).value();
  auto lv = ctx.ToLocal(v).value();
  std::printf("row sums:      V[0] = %.4f\n", lv[0]);

  // Total aggregation.
  auto total = ctx.EvalScalar("+/[ a | ((i,j),a) <- A ]").value();
  std::printf("total sum:     %.4f\n", total);

  // Matrix multiplication through the group-by-join (SUMMA).
  Stopwatch sw;
  auto prod = ctx.EvalTiled(multiply).value();
  std::printf("multiply:      %ldx%ld result in %.1f ms, shuffle %s\n",
              static_cast<long>(prod.rows), static_cast<long>(prod.cols),
              sw.ElapsedMillis(), ctx.metrics().ToString().c_str());
  return 0;
}
